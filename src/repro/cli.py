"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``generate``   create a random paper-style model and write it as JSON
``info``       summarise a model file (``--json`` for machine output)
``solve``      solve a model (gradient / distributed / optimal / backpressure)
``profile``    solve with instrumentation on and print phase timings
``validate``   solve + audit against the paper's invariant catalog
``figure4``    run a quick Figure-4 reproduction
``serve``      run the admission-control daemon (``repro.serve/1`` over TCP)
``scenario``   list the named scenario catalog, or compile and run one

Examples
--------
::

    python -m repro generate --nodes 40 --commodities 3 --seed 7 -o model.json
    python -m repro info model.json --json
    python -m repro solve model.json --method gradient --step-size 0.04 -o sol.json
    python -m repro solve model.json --metrics-out m.json --trace-out t.json
    python -m repro solve model.json --workers 4          # process-parallel
    python -m repro solve model.json --workers auto       # size-aware backend
    python -m repro solve model.json --backend thread --workers 2
    python -m repro solve model.json --validate           # attach the audit
    python -m repro profile model.json --max-iterations 2000 --workers 2
    python -m repro validate model.json --method optimal --strict
    python -m repro validate --self-test                  # fault injection
    python -m repro figure4 --seed 7
    python -m repro serve model.json --port 7471 --workers 4
    python -m repro serve --nodes 120 --commodities 12 --batch-window 0.02
    python -m repro serve --scenario serve-smoke-30
    python -m repro scenario list --json
    python -m repro scenario run fat-tree-16          # TAB-PLACEMENT
    python -m repro scenario run serve-diurnal-30 --seed 3
    python -m repro solve --scenario sparse-30x4 --method gradient

``solve --json`` emits one JSON document (the ``repro.result/1`` schema,
plus an embedded ``repro.metrics/1`` registry section when instrumentation
ran); ``--metrics-out`` / ``--trace-out`` write the full metrics document
and a ``chrome://tracing`` timeline.  ``--eta`` still works as a deprecated
alias of ``--step-size``.
"""

from __future__ import annotations

import argparse
import json
import sys
import warnings
from typing import List, Optional

from repro import (
    BackpressureConfig,
    GradientConfig,
    Instrumentation,
    SolveOptions,
    build_extended_network,
    solve,
)
from repro.analysis import AlgorithmTrajectory, figure4_table, timing_table
from repro.core.marginals import CostModel
from repro.io import (
    load_network,
    result_to_dict,
    save_network,
    save_solution,
    utility_to_spec,
)
from repro.scenarios import paper_figure4_network, random_stream_network
from repro.scenarios import RandomNetworkSpec

__all__ = ["main"]

INFO_SCHEMA = "repro.info/1"


def _cmd_generate(args: argparse.Namespace) -> int:
    spec = RandomNetworkSpec(
        num_nodes=args.nodes, num_commodities=args.commodities
    )
    network = random_stream_network(spec, seed=args.seed)
    save_network(network, args.output)
    print(f"wrote {network} to {args.output}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    network = load_network(args.model)
    ext = build_extended_network(network)
    if args.json:
        doc = {
            "schema": INFO_SCHEMA,
            "model": args.model,
            "nodes": len(network.physical.nodes),
            "links": len(network.physical.links),
            "commodities": [
                {
                    "name": c.name,
                    "source": c.source,
                    "sink": c.sink,
                    "max_rate": c.max_rate,
                    "utility": utility_to_spec(c.utility),
                }
                for c in network.commodities
            ],
            "extended": {"nodes": ext.num_nodes, "edges": ext.num_edges},
        }
        print(json.dumps(doc, indent=2))
        return 0
    print(network)
    print(ext.describe())
    for commodity in network.commodities:
        print(f"  {commodity}  utility={commodity.utility!r}")
    return 0


def _make_config(args: argparse.Namespace):
    """The per-method config object from the shared solver flags."""
    if args.method == "optimal":
        return None
    if args.method == "backpressure":
        kwargs = {"max_iterations": args.max_iterations}
        if args.record_every is not None:
            kwargs["record_every"] = args.record_every
        return BackpressureConfig(**kwargs)
    kwargs = {
        "eta": args.step_size,
        "max_iterations": args.max_iterations,
        "cost_model": CostModel(eps=args.eps),
        "adaptive_eta": args.adaptive,
    }
    if args.record_every is not None:
        kwargs["record_every"] = args.record_every
    return GradientConfig(**kwargs)


def _workers_arg(value: str):
    """``--workers`` accepts an integer count or the string ``auto``."""
    if value == "auto":
        return "auto"
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--workers takes an integer or 'auto', got {value!r}"
        )


def _model_label(args: argparse.Namespace) -> str:
    """What the output documents call the input model."""
    if getattr(args, "scenario", None) is not None:
        return f"scenario:{args.scenario}"
    return args.model


def _input_network(args: argparse.Namespace):
    """The input model: a file, or a compiled ``--scenario`` network."""
    scenario_name = getattr(args, "scenario", None)
    if scenario_name is not None:
        if args.model is not None:
            raise SystemExit(
                "error: pass either a model file or --scenario, not both"
            )
        from repro.scenarios import scenario

        return scenario(scenario_name).compile().network
    if args.model is None:
        raise SystemExit("error: a model file or --scenario is required")
    return load_network(args.model)


def _instrumented_solve(args: argparse.Namespace, instrumentation, validate=False):
    network = _input_network(args)
    options = SolveOptions(
        method=args.method,
        config=_make_config(args),
        instrumentation=instrumentation,
        full_result=True,
        workers=args.workers,
        backend=args.backend,
        staleness=args.staleness,
        execution=args.execution,
        validate=validate,
    )
    return solve(network, options=options)


def _export_instrumentation(args: argparse.Namespace, inst, quiet: bool) -> None:
    if getattr(args, "metrics_out", None):
        inst.export_metrics(
            args.metrics_out, model=_model_label(args), method=args.method
        )
        if not quiet:
            print(f"wrote metrics to {args.metrics_out}")
    if getattr(args, "trace_out", None):
        inst.export_trace(args.trace_out)
        if not quiet:
            print(f"wrote chrome trace to {args.trace_out}")


def _cmd_solve(args: argparse.Namespace) -> int:
    instrument = bool(args.json or args.metrics_out or args.trace_out)
    inst = Instrumentation() if instrument else None
    result = _instrumented_solve(args, inst, validate=args.validate)
    if args.json:
        doc = result_to_dict(result, model=_model_label(args), method=args.method)
        doc["metrics"] = inst.metrics_document(include_events=False)
        print(json.dumps(doc, indent=2))
    else:
        print(result.solution.summary())
        if result.validation is not None:
            print()
            print(result.validation.summary())
    if args.output:
        save_solution(result.solution, args.output)
        if not args.json:
            print(f"wrote solution to {args.output}")
    if inst is not None:
        _export_instrumentation(args, inst, quiet=args.json)
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    inst = Instrumentation()
    result = _instrumented_solve(args, inst, validate=args.validate)
    solution = result.solution
    iterations = solution.iterations if solution is not None else None
    print(
        timing_table(
            inst,
            title=f"Phase timings: {args.method}"
            + (f", {iterations} iterations" if iterations else ""),
        )
    )
    counters = inst.registry.as_dict()["counters"]
    if counters:
        width = max(len(name) for name in counters)
        print("\nCounters")
        for name in sorted(counters):
            print(f"  {name.ljust(width)}  {counters[name]:g}")
    print(f"\nfinal utility: {result.final_utility:.6g}")
    if result.validation is not None:
        print()
        print(result.validation.summary())
    _export_instrumentation(args, inst, quiet=False)
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.validate import run_self_test

    if args.self_test:
        records = run_self_test()
        if args.json:
            doc = {
                "schema": "repro.selftest/1",
                "records": [
                    {
                        "fault": r.fault,
                        "expected_check": r.expected_check,
                        "flagged": list(r.flagged),
                        "caught": r.caught,
                        "isolated": r.isolated,
                    }
                    for r in records
                ],
                "healthy": all(r.caught for r in records),
            }
            print(json.dumps(doc, indent=2))
        else:
            width = max(len(r.fault) for r in records)
            print("Fault self-test (each class must be caught by its check)")
            for r in records:
                status = "caught" if r.caught else "MISSED"
                if r.caught and r.isolated:
                    status += ", isolated"
                print(
                    f"  {r.fault.ljust(width)}  -> {r.expected_check:<12}"
                    f"  [{status}]  flagged={list(r.flagged)}"
                )
        return 0 if all(r.caught for r in records) else 1

    if args.model is None and getattr(args, "scenario", None) is None:
        print(
            "error: a model file or --scenario is required unless --self-test",
            file=sys.stderr,
        )
        return 2
    result = _instrumented_solve(args, None, validate=True)
    report = result.validation
    if args.json:
        doc = report.to_dict()
        doc["model"] = _model_label(args)
        doc["method"] = args.method
        print(json.dumps(doc, indent=2))
    else:
        print(result.solution.summary())
        print()
        print(report.summary())
    return 0 if report.passed or not args.strict else 1


def _cmd_figure4(args: argparse.Namespace) -> int:
    from repro.core.optimal import solve_lp

    network = paper_figure4_network(seed=args.seed)
    ext = build_extended_network(network)
    optimum = solve_lp(ext)
    gradient = solve(
        network,
        config=GradientConfig(
            eta=0.04, max_iterations=args.max_iterations, record_every=10
        ),
        full_result=True,
    )
    backpressure = solve(
        network,
        method="backpressure",
        config=BackpressureConfig(
            max_iterations=args.bp_iterations, record_every=200, buffer_cap=1000.0
        ),
        full_result=True,
    )
    print(
        figure4_table(
            optimum.utility,
            [
                AlgorithmTrajectory.from_result("gradient (eta=0.04)", gradient),
                AlgorithmTrajectory.from_result("back-pressure", backpressure),
            ],
        )
    )
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    from repro.scenarios import scenario, scenario_summaries

    if args.action == "list":
        rows = scenario_summaries()
        if args.json:
            doc = {"schema": "repro.scenarios/1", "scenarios": rows}
            print(json.dumps(doc, indent=2))
        else:
            width = max(len(row["name"]) for row in rows)
            for row in rows:
                print(f"{row['name'].ljust(width)}  {row['description']}")
        return 0

    spec = scenario(args.name, seed=args.seed)
    if spec.placement.kind == "joint":
        from repro.analysis import placement_table
        from repro.placement import JointPlacementLoop

        report = JointPlacementLoop.from_scenario(spec).run()
        if args.json:
            doc = {
                "schema": "repro.scenario.run/1",
                "scenario": spec.name,
                "seed": spec.seed,
                "mode": "joint-placement",
                "report": report.to_dict(),
            }
            print(json.dumps(doc, indent=2))
        else:
            print(
                placement_table(
                    report, title=f"TAB-PLACEMENT ({spec.name}, seed {spec.seed})"
                )
            )
        return 0

    from repro.online import OnlineOrchestrator

    compiled = spec.compile()
    orchestrator = OnlineOrchestrator(
        compiled.network, compiled.events, config=GradientConfig(eta=args.step_size)
    )
    iterations = (
        args.iterations if args.iterations is not None else compiled.horizon()
    )
    result = orchestrator.run(iterations)
    if args.json:
        doc = {
            "schema": "repro.scenario.run/1",
            "scenario": spec.name,
            "seed": spec.seed,
            "mode": "online",
            "events": len(compiled.events),
            "iterations": iterations,
            "final_utility": result.final_utility,
            "recoveries": len(result.recoveries),
        }
        print(json.dumps(doc, indent=2))
    else:
        network = compiled.network
        print(
            f"scenario {spec.name!r} (seed {spec.seed}): "
            f"{len(network.physical.nodes)} nodes, "
            f"{len(network.commodities)} commodities, "
            f"{len(compiled.events)} events over {iterations} iterations"
        )
        print(
            f"final utility {result.final_utility:.4f}  "
            f"({len(result.recoveries)} event recoveries)"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import AdmissionServer, ServeConfig

    if args.model is not None and args.scenario is not None:
        print(
            "error: pass either a model file or --scenario, not both",
            file=sys.stderr,
        )
        return 2
    if args.model is not None:
        network = load_network(args.model)
    elif args.scenario is not None:
        from repro.scenarios import scenario

        network = scenario(args.scenario).compile().network
    else:
        spec = RandomNetworkSpec(
            num_nodes=args.nodes, num_commodities=args.commodities
        )
        network = random_stream_network(spec, seed=args.seed)

    config = ServeConfig(
        host=args.host,
        port=args.port,
        batch_window=args.batch_window,
        max_batch=args.max_batch,
        queue_limit=args.queue_limit,
        refine_iterations=args.refine,
        warmup_iterations=args.warmup,
        validate_epochs=not args.no_validate,
        min_admit_rate=args.min_admit_rate,
    )
    options = SolveOptions(
        method="gradient",
        config=GradientConfig(eta=args.step_size),
        workers=args.workers,
        backend=args.backend,
        staleness=args.staleness,
    )
    inst = Instrumentation() if args.metrics_out else None

    async def run() -> None:
        server = AdmissionServer(
            network, config=config, options=options, instrumentation=inst
        )
        port = await server.start()
        # the readiness line scripts and the CI smoke job key off: one line,
        # stdout, flushed before any request is served
        print(
            f"repro.serve/1 listening on {config.host}:{port} "
            f"(batch-window {1e3 * config.batch_window:g} ms, "
            f"max-batch {config.max_batch}, "
            f"validate={'on' if config.validate_epochs else 'off'})",
            flush=True,
        )
        try:
            await server.wait_closed()
        except asyncio.CancelledError:
            await server.drain()
            raise

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    if inst is not None:
        inst.export_metrics(
            args.metrics_out,
            model=args.model
            or (f"scenario:{args.scenario}" if args.scenario else "generated"),
            method="serve",
        )
        print(f"wrote metrics to {args.metrics_out}")
    return 0


def _add_solver_options(
    parser: argparse.ArgumentParser, positional_model: bool = True
) -> None:
    """Flags shared by ``solve``, ``profile``, and ``validate``."""
    if positional_model:
        parser.add_argument(
            "model", nargs="?", default=None,
            help="model file (or use --scenario)",
        )
    parser.add_argument(
        "--scenario",
        default=None,
        metavar="NAME",
        help="compile a named scenario's network as the input model "
        "instead of reading a file (see 'repro scenario list')",
    )
    parser.add_argument(
        "--method",
        choices=["gradient", "distributed", "optimal", "backpressure"],
        default="gradient",
    )
    parser.add_argument(
        "--step-size",
        "--eta",
        dest="step_size",
        type=float,
        default=0.04,
        help="gradient step size eta (--eta is a deprecated alias)",
    )
    parser.add_argument("--eps", type=float, default=0.2)
    parser.add_argument("--adaptive", action="store_true", help="adaptive step scale")
    parser.add_argument("--max-iterations", type=int, default=20000)
    parser.add_argument(
        "--workers",
        type=_workers_arg,
        default=None,
        metavar="N|auto",
        help="shard per-commodity work across N workers, or 'auto' to pick "
        "a backend from CPUs and problem size (gradient/distributed; "
        "synchronous iterates stay bit-identical to serial)",
    )
    parser.add_argument(
        "--backend",
        choices=["serial", "thread", "process", "auto"],
        default=None,
        help="execution backend (default: serial, or $REPRO_BACKEND); "
        "combinable with --workers",
    )
    parser.add_argument(
        "--staleness",
        type=int,
        default=None,
        metavar="K",
        help="process-backend batched dispatch: up to K+1 iterations per "
        "worker round-trip with the global derivative held stale "
        "(0 = synchronous bit-identical mode; needs --record-every > 1)",
    )
    parser.add_argument(
        "--execution",
        choices=["sync", "async"],
        default=None,
        help="distributed execution model: 'sync' phase barriers (default) "
        "or the barrier-free 'async' event-driven engine, where "
        "--staleness bounds how stale a node's neighbour view may be "
        "(method=distributed only; see docs/async.md)",
    )
    parser.add_argument(
        "--record-every",
        type=int,
        default=None,
        help="history sampling period (default: the method's own)",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        help="write the repro.metrics/1 JSON document here",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        help="write a chrome://tracing timeline here",
    )
    parser.add_argument(
        "--validate",
        action="store_true",
        help="audit the result against the paper's invariant catalog "
        "(see docs/validation.md) and print the report",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="ICDCS'07 stream-processing reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a random paper-style model")
    gen.add_argument("--nodes", type=int, default=40)
    gen.add_argument("--commodities", type=int, default=3)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("-o", "--output", required=True)
    gen.set_defaults(func=_cmd_generate)

    info = sub.add_parser("info", help="summarise a model file")
    info.add_argument("model")
    info.add_argument(
        "--json", action="store_true", help="emit a repro.info/1 JSON document"
    )
    info.set_defaults(func=_cmd_info)

    slv = sub.add_parser("solve", help="solve a model file")
    _add_solver_options(slv)
    slv.add_argument("-o", "--output", default=None)
    slv.add_argument(
        "--json",
        action="store_true",
        help="emit a repro.result/1 JSON document instead of the text summary",
    )
    slv.set_defaults(func=_cmd_solve)

    prof = sub.add_parser(
        "profile", help="solve with instrumentation on and print phase timings"
    )
    _add_solver_options(prof)
    prof.set_defaults(func=_cmd_profile)

    val = sub.add_parser(
        "validate",
        help="solve a model and audit the result against the invariant catalog",
    )
    val.add_argument(
        "model", nargs="?", default=None, help="model file (omit with --self-test)"
    )
    _add_solver_options(val, positional_model=False)
    val.add_argument(
        "--self-test",
        action="store_true",
        help="inject every known fault class and verify the checker catches each",
    )
    val.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero if any check fails",
    )
    val.add_argument(
        "--json",
        action="store_true",
        help="emit the repro.validation/1 report as JSON",
    )
    val.set_defaults(func=_cmd_validate)

    fig = sub.add_parser("figure4", help="quick Figure-4 reproduction")
    fig.add_argument("--seed", type=int, default=7)
    fig.add_argument("--max-iterations", type=int, default=3000)
    fig.add_argument("--bp-iterations", type=int, default=60000)
    fig.set_defaults(func=_cmd_figure4)

    scen = sub.add_parser(
        "scenario",
        help="list the named scenario catalog, or compile and run one",
    )
    scen_sub = scen.add_subparsers(dest="action", required=True)
    scen_list = scen_sub.add_parser("list", help="list the catalog")
    scen_list.add_argument(
        "--json", action="store_true",
        help="emit a repro.scenarios/1 JSON document",
    )
    scen_list.set_defaults(func=_cmd_scenario)
    scen_run = scen_sub.add_parser(
        "run",
        help="compile a named scenario and run it (online timeline, or the "
        "joint placement loop for placement=joint entries)",
    )
    scen_run.add_argument("name")
    scen_run.add_argument(
        "--seed", type=int, default=None,
        help="override the entry's pinned seed",
    )
    scen_run.add_argument(
        "--iterations", type=int, default=None,
        help="online horizon (default: past the last event)",
    )
    scen_run.add_argument("--step-size", type=float, default=0.04)
    scen_run.add_argument(
        "--json", action="store_true",
        help="emit a repro.scenario.run/1 JSON document",
    )
    scen_run.set_defaults(func=_cmd_scenario)

    srv = sub.add_parser(
        "serve",
        help="run the admission-control daemon (repro.serve/1 over TCP)",
    )
    srv.add_argument(
        "model", nargs="?", default=None,
        help="model file (omit to generate one from --nodes/--commodities/--seed)",
    )
    srv.add_argument("--nodes", type=int, default=40)
    srv.add_argument("--commodities", type=int, default=4)
    srv.add_argument("--seed", type=int, default=0)
    srv.add_argument(
        "--scenario", default=None, metavar="NAME",
        help="serve a named scenario's compiled network "
        "(see 'repro scenario list'); clients can replay the same "
        "scenario's trace with 'python -m repro.serve.client "
        "--scenario NAME'",
    )
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument(
        "--port", type=int, default=0,
        help="TCP port (default 0: pick an ephemeral port, printed on the "
        "readiness line)",
    )
    srv.add_argument(
        "--batch-window", type=float, default=0.020, metavar="SECONDS",
        help="how long requests coalesce into one batch (default 20 ms)",
    )
    srv.add_argument("--max-batch", type=int, default=64)
    srv.add_argument(
        "--queue-limit", type=int, default=1024,
        help="pending event requests before overloaded (429) backpressure",
    )
    srv.add_argument(
        "--refine", type=int, default=8, metavar="ITERATIONS",
        help="gradient refinement steps per published epoch",
    )
    srv.add_argument(
        "--warmup", type=int, default=200, metavar="ITERATIONS",
        help="initial convergence before the daemon starts serving",
    )
    srv.add_argument(
        "--no-validate", action="store_true",
        help="skip the per-epoch invariant audit before publishing",
    )
    srv.add_argument(
        "--min-admit-rate", type=float, default=0.0, metavar="RATE",
        help="revert arrivals whose admitted rate stays below RATE",
    )
    srv.add_argument("--step-size", type=float, default=0.04)
    srv.add_argument("--workers", type=_workers_arg, default=None, metavar="N|auto")
    srv.add_argument(
        "--backend", choices=["serial", "thread", "process", "auto"], default=None
    )
    srv.add_argument("--staleness", type=int, default=None, metavar="K")
    srv.add_argument(
        "--metrics-out", default=None,
        help="write the repro.metrics/1 document here on shutdown",
    )
    srv.set_defaults(func=_cmd_serve)

    return parser


def _warn_deprecated_flags(argv: List[str]) -> None:
    # argparse in this Python has no deprecated= support, so the alias is
    # detected on the raw argv before parsing
    if any(token == "--eta" or token.startswith("--eta=") for token in argv):
        warnings.warn(
            "--eta is deprecated; use --step-size", DeprecationWarning, stacklevel=2
        )


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    _warn_deprecated_flags(argv)
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
