"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``generate``   create a random paper-style model and write it as JSON
``info``       summarise a model file
``solve``      solve a model (gradient / optimal / backpressure)
``figure4``    run a quick Figure-4 reproduction

Examples
--------
::

    python -m repro generate --nodes 40 --commodities 3 --seed 7 -o model.json
    python -m repro info model.json
    python -m repro solve model.json --method gradient --eta 0.04 -o solution.json
    python -m repro figure4 --seed 7
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import (
    BackpressureAlgorithm,
    BackpressureConfig,
    GradientAlgorithm,
    GradientConfig,
    Solution,
    build_extended_network,
    solve_optimal,
)
from repro.analysis import AlgorithmTrajectory, figure4_table
from repro.core.marginals import CostModel
from repro.io import load_network, save_network, save_solution
from repro.workloads import paper_figure4_network, random_stream_network
from repro.workloads.random_network import RandomNetworkSpec

__all__ = ["main"]


def _cmd_generate(args: argparse.Namespace) -> int:
    spec = RandomNetworkSpec(
        num_nodes=args.nodes, num_commodities=args.commodities
    )
    network = random_stream_network(spec, seed=args.seed)
    save_network(network, args.output)
    print(f"wrote {network} to {args.output}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    network = load_network(args.model)
    ext = build_extended_network(network)
    print(network)
    print(ext.describe())
    for commodity in network.commodities:
        print(f"  {commodity}  utility={commodity.utility!r}")
    return 0


def _solve(args: argparse.Namespace) -> Solution:
    network = load_network(args.model)
    ext = build_extended_network(network)
    if args.method == "gradient":
        config = GradientConfig(
            eta=args.eta,
            max_iterations=args.max_iterations,
            cost_model=CostModel(eps=args.eps),
            adaptive_eta=args.adaptive,
        )
        return GradientAlgorithm(ext, config).run().solution
    if args.method == "optimal":
        return solve_optimal(ext)
    if args.method == "backpressure":
        result = BackpressureAlgorithm(
            ext, BackpressureConfig(max_iterations=args.max_iterations)
        ).run()
        return Solution(
            ext=ext,
            admitted=result.average_rates,
            utility=result.utility,
            cost=float("nan"),
            method="backpressure",
            iterations=result.iterations,
        )
    raise ValueError(f"unknown method {args.method!r}")


def _cmd_solve(args: argparse.Namespace) -> int:
    solution = _solve(args)
    print(solution.summary())
    if args.output:
        save_solution(solution, args.output)
        print(f"wrote solution to {args.output}")
    return 0


def _cmd_figure4(args: argparse.Namespace) -> int:
    from repro.core.optimal import solve_lp

    network = paper_figure4_network(seed=args.seed)
    ext = build_extended_network(network)
    optimum = solve_lp(ext)
    gradient = GradientAlgorithm(
        ext,
        GradientConfig(eta=0.04, max_iterations=args.max_iterations, record_every=10),
    ).run()
    backpressure = BackpressureAlgorithm(
        ext,
        BackpressureConfig(
            max_iterations=args.bp_iterations, record_every=200, buffer_cap=1000.0
        ),
    ).run()
    print(
        figure4_table(
            optimum.utility,
            [
                AlgorithmTrajectory(
                    "gradient (eta=0.04)",
                    gradient.recorded_iterations,
                    gradient.utilities,
                ),
                AlgorithmTrajectory(
                    "back-pressure",
                    backpressure.recorded_iterations,
                    backpressure.utilities,
                ),
            ],
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="ICDCS'07 stream-processing reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a random paper-style model")
    gen.add_argument("--nodes", type=int, default=40)
    gen.add_argument("--commodities", type=int, default=3)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("-o", "--output", required=True)
    gen.set_defaults(func=_cmd_generate)

    info = sub.add_parser("info", help="summarise a model file")
    info.add_argument("model")
    info.set_defaults(func=_cmd_info)

    slv = sub.add_parser("solve", help="solve a model file")
    slv.add_argument("model")
    slv.add_argument(
        "--method",
        choices=["gradient", "optimal", "backpressure"],
        default="gradient",
    )
    slv.add_argument("--eta", type=float, default=0.04)
    slv.add_argument("--eps", type=float, default=0.2)
    slv.add_argument("--adaptive", action="store_true", help="adaptive step scale")
    slv.add_argument("--max-iterations", type=int, default=20000)
    slv.add_argument("-o", "--output", default=None)
    slv.set_defaults(func=_cmd_solve)

    fig = sub.add_parser("figure4", help="quick Figure-4 reproduction")
    fig.add_argument("--seed", type=int, default=7)
    fig.add_argument("--max-iterations", type=int, default=3000)
    fig.add_argument("--bp-iterations", type=int, default=60000)
    fig.set_defaults(func=_cmd_figure4)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
