"""Physical stream-processing network model.

Section 2 of the paper models the substrate as a capacitated directed graph
``G0 = (N0, E0)``:

* ``N0`` splits into processing nodes ``P`` (servers and sources -- sources
  can process) and sinks ``J`` (receive only);
* every processing node ``u`` has a computing budget ``C_u``;
* every directed link ``(i, k)`` has a bandwidth ``B_ik``.

This module holds that physical layer only.  Commodities (streams, task
chains, gains, utilities) live in :mod:`repro.core.commodity`; the combined
model in :class:`repro.core.network.StreamNetwork` is assembled there too via
a thin wrapper re-exported from this module for convenience.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, List, Tuple

import networkx as nx

from repro.exceptions import ModelError, ValidationError

__all__ = ["NodeKind", "Node", "Link", "PhysicalNetwork"]


class NodeKind(Enum):
    """Role of a physical node.  Sources are ordinary processing nodes."""

    PROCESSING = "processing"
    SINK = "sink"


@dataclass(frozen=True)
class Node:
    """A physical node: a server (with compute budget) or a sink.

    Sinks only receive data (paper, Section 2); their ``capacity`` is stored
    as ``inf`` because they never consume compute.
    """

    name: str
    kind: NodeKind
    capacity: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("node name must be non-empty")
        if self.kind is NodeKind.PROCESSING:
            if not self.capacity > 0:
                raise ValidationError(
                    f"processing node {self.name!r} needs capacity > 0, "
                    f"got {self.capacity}"
                )
        elif self.capacity != float("inf"):
            raise ValidationError(
                f"sink {self.name!r} does not process; capacity must be inf"
            )

    @property
    def is_sink(self) -> bool:
        return self.kind is NodeKind.SINK


@dataclass(frozen=True)
class Link:
    """A directed physical link with finite bandwidth ``B_ik``."""

    tail: str
    head: str
    bandwidth: float

    def __post_init__(self) -> None:
        if self.tail == self.head:
            raise ValidationError(f"self-loop link at {self.tail!r} not allowed")
        if not self.bandwidth > 0:
            raise ValidationError(
                f"link ({self.tail!r}, {self.head!r}) needs bandwidth > 0, "
                f"got {self.bandwidth}"
            )

    @property
    def key(self) -> Tuple[str, str]:
        return (self.tail, self.head)


class PhysicalNetwork:
    """The capacitated directed graph ``G0 = (N0, E0)`` of the paper.

    Build incrementally with :meth:`add_server`, :meth:`add_sink` and
    :meth:`add_link`, then call :meth:`validate`.

    Example
    -------
    >>> net = PhysicalNetwork()
    >>> net.add_server("s1", capacity=10.0)
    >>> net.add_sink("d1")
    >>> net.add_link("s1", "d1", bandwidth=5.0)
    >>> net.validate()
    """

    def __init__(self) -> None:
        self._nodes: Dict[str, Node] = {}
        self._links: Dict[Tuple[str, str], Link] = {}

    # -- construction ----------------------------------------------------------
    def add_server(self, name: str, capacity: float) -> Node:
        """Add a processing node with compute budget ``capacity``."""
        return self._add_node(Node(name, NodeKind.PROCESSING, float(capacity)))

    def add_sink(self, name: str) -> Node:
        """Add a sink node (receives data, never processes)."""
        return self._add_node(Node(name, NodeKind.SINK, float("inf")))

    def _add_node(self, node: Node) -> Node:
        if node.name in self._nodes:
            raise ModelError(f"duplicate node {node.name!r}")
        self._nodes[node.name] = node
        return node

    def add_link(self, tail: str, head: str, bandwidth: float) -> Link:
        """Add a directed link ``tail -> head`` with the given bandwidth."""
        for endpoint in (tail, head):
            if endpoint not in self._nodes:
                raise ModelError(f"link endpoint {endpoint!r} is not a known node")
        if self._nodes[tail].is_sink:
            raise ModelError(f"sink {tail!r} cannot originate a link")
        link = Link(tail, head, float(bandwidth))
        if link.key in self._links:
            raise ModelError(f"duplicate link {link.key!r}")
        self._links[link.key] = link
        return link

    # -- accessors -------------------------------------------------------------
    @property
    def nodes(self) -> Dict[str, Node]:
        return dict(self._nodes)

    @property
    def links(self) -> Dict[Tuple[str, str], Link]:
        return dict(self._links)

    def node(self, name: str) -> Node:
        try:
            return self._nodes[name]
        except KeyError:
            raise ModelError(f"unknown node {name!r}") from None

    def link(self, tail: str, head: str) -> Link:
        try:
            return self._links[(tail, head)]
        except KeyError:
            raise ModelError(f"unknown link ({tail!r}, {head!r})") from None

    def has_link(self, tail: str, head: str) -> bool:
        return (tail, head) in self._links

    def processing_nodes(self) -> List[Node]:
        return [n for n in self._nodes.values() if not n.is_sink]

    def sinks(self) -> List[Node]:
        return [n for n in self._nodes.values() if n.is_sink]

    def out_links(self, name: str) -> List[Link]:
        return [l for l in self._links.values() if l.tail == name]

    def in_links(self, name: str) -> List[Link]:
        return [l for l in self._links.values() if l.head == name]

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_links(self) -> int:
        return len(self._links)

    # -- validation & export ---------------------------------------------------
    def validate(self) -> None:
        """Check structural sanity: non-empty, weakly connected, sinks sink-like.

        Graph ``G`` "is assumed to be connected" in the paper; we enforce weak
        connectivity, which is what a meaningful instance needs.
        """
        if not self._nodes:
            raise ValidationError("network has no nodes")
        if not self._links:
            raise ValidationError("network has no links")
        graph = self.to_networkx()
        if not nx.is_weakly_connected(graph):
            raise ValidationError("network graph is not (weakly) connected")

    def to_networkx(self) -> "nx.DiGraph":
        """Export as a :class:`networkx.DiGraph` with capacity attributes."""
        graph = nx.DiGraph()
        for node in self._nodes.values():
            graph.add_node(node.name, kind=node.kind.value, capacity=node.capacity)
        for link in self._links.values():
            graph.add_edge(link.tail, link.head, bandwidth=link.bandwidth)
        return graph

    def copy(self) -> "PhysicalNetwork":
        """Return a deep, independent copy of this network."""
        clone = PhysicalNetwork()
        clone._nodes = dict(self._nodes)
        clone._links = dict(self._links)
        return clone

    def __repr__(self) -> str:
        return (
            f"PhysicalNetwork(nodes={self.num_nodes}, links={self.num_links}, "
            f"sinks={len(self.sinks())})"
        )


def weakly_connected(nodes: Iterable[str], edges: Iterable[Tuple[str, str]]) -> bool:
    """Convenience: is the graph on ``nodes`` with ``edges`` weakly connected?"""
    graph = nx.DiGraph()
    graph.add_nodes_from(nodes)
    graph.add_edges_from(edges)
    if graph.number_of_nodes() == 0:
        return False
    return nx.is_weakly_connected(graph)
