"""The common ``RunResult`` protocol every algorithm outcome implements.

Before this module, each algorithm grew its own result shape --
``GradientResult``, ``DistributedRunResult``, ``BackpressureResult``,
``OnlineResult`` -- and downstream consumers (``analysis/``, ``cli.py``,
the benchmarks) branched on which one they held.  The protocol names the
surface they all share:

``history``
    The sampled trajectory: a sequence of records, each with at least
    ``iteration`` and ``utility`` attributes (``cost`` where defined).
``utilities`` / ``costs`` / ``recorded_iterations``
    The trajectory as ndarrays (``costs`` is NaN where the method defines
    no penalised cost, e.g. back-pressure).
``solution``
    The final :class:`~repro.core.solution.Solution`.
``final_utility``
    The solution's total utility (the paper's objective).

:class:`RunResultMixin` derives the ndarray accessors from ``history`` so
each result class only stores its records.  :class:`OptimalResult` wraps a
centralized :class:`Solution` in the same protocol (a one-record history),
which is what lets ``solve(..., full_result=True)`` return a uniform type
for every method including ``"optimal"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.core.solution import Solution

__all__ = ["RunResult", "RunResultMixin", "TrajectoryPoint", "OptimalResult"]


@runtime_checkable
class RunResult(Protocol):
    """What every algorithm outcome exposes (checkable via ``isinstance``)."""

    @property
    def history(self) -> Sequence[Any]: ...

    @property
    def solution(self) -> Solution: ...

    @property
    def utilities(self) -> np.ndarray: ...

    @property
    def costs(self) -> np.ndarray: ...

    @property
    def recorded_iterations(self) -> np.ndarray: ...

    @property
    def final_utility(self) -> float: ...


class RunResultMixin:
    """Derives the ndarray trajectory accessors from ``self.history``.

    Host classes provide ``history`` (a sequence of records with
    ``iteration`` and ``utility`` attributes; ``cost`` optional) and
    ``solution``.
    """

    # the invariant audit (repro.validate.ValidationReport), attached when a
    # run executes with validate= on; None on unvalidated results
    validation: Any = None

    @property
    def utilities(self) -> np.ndarray:
        return np.array([rec.utility for rec in self.history])

    @property
    def costs(self) -> np.ndarray:
        return np.array(
            [getattr(rec, "cost", float("nan")) for rec in self.history]
        )

    @property
    def recorded_iterations(self) -> np.ndarray:
        return np.array([rec.iteration for rec in self.history])

    @property
    def final_utility(self) -> float:
        return float(self.solution.utility)


@dataclass(frozen=True)
class TrajectoryPoint:
    """A minimal history record for wrapper results (one sampled point)."""

    iteration: int
    cost: float
    utility: float


@dataclass
class OptimalResult(RunResultMixin):
    """A centralized solution dressed in the ``RunResult`` protocol.

    Exact methods have no trajectory, so ``history`` is the single final
    point and ``converged`` is always True.
    """

    solution: Solution

    @property
    def history(self) -> List[TrajectoryPoint]:
        return [
            TrajectoryPoint(
                iteration=self.iterations,
                cost=float(self.solution.cost),
                utility=float(self.solution.utility),
            )
        ]

    @property
    def converged(self) -> bool:
        return True

    @property
    def iterations(self) -> int:
        return int(self.solution.iterations or 0)
