"""Commodities: streams, task chains, per-commodity DAGs, gains, and costs.

The paper's Section 2:

* each commodity ``j`` has a unique source ``s_j`` (a processing node), a
  unique sink ``j``, and a maximum offered rate ``lambda_j``;
* the commodity's operators are placed on servers, inducing a directed
  acyclic subgraph ``G_j = (N_j, E_j)`` of the physical graph;
* processing one unit of ``j`` at node ``i`` toward ``k`` consumes
  ``c_ik(j)`` compute at ``i`` and emits ``beta_ik(j)`` units downstream;
* Property 1 requires the product of gains along any source->node path to be
  path independent, which is equivalent to the existence of node potentials
  ``g_n(j)`` with ``beta_ik(j) = g_k(j) / g_i(j)`` and ``g_{s_j}(j) = 1``.

Commodities here store the potentials ``g`` directly (gains are derived),
making Property 1 true by construction; :func:`validate_property1` checks a
user-supplied per-edge gain table for consistency instead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import networkx as nx

from repro.core.network import PhysicalNetwork
from repro.core.utility import LinearUtility, UtilityFunction
from repro.exceptions import ModelError, ValidationError

Edge = Tuple[str, str]

__all__ = [
    "Task",
    "Commodity",
    "StreamNetwork",
    "validate_property1",
    "potentials_from_gains",
]


@dataclass(frozen=True)
class Task:
    """A stream operator: per-unit compute ``cost`` and output ``gain``.

    ``gain < 1`` models shrinking operators (filters, aggregation);
    ``gain > 1`` models expanding operators (decryption, joins, decompression).
    """

    name: str
    cost: float
    gain: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("task name must be non-empty")
        if not self.cost > 0:
            raise ValidationError(f"task {self.name!r} needs cost > 0, got {self.cost}")
        if not self.gain > 0:
            raise ValidationError(f"task {self.name!r} needs gain > 0, got {self.gain}")


class Commodity:
    """One stream commodity: source, sink, offered rate, utility, DAG, costs.

    Parameters
    ----------
    name:
        Identifier, unique within a :class:`StreamNetwork`.
    source, sink:
        Names of the source (processing) node and sink node.
    max_rate:
        The maximum generation rate ``lambda_j`` at the source.
    utility:
        Increasing concave :class:`~repro.core.utility.UtilityFunction` of the
        admitted rate; defaults to throughput (:class:`LinearUtility`).
    edges:
        The allowed edge set ``E_j`` (must form a DAG containing a
        source->sink path).
    potentials:
        Node potentials ``g_n(j) > 0``; gains are ``beta = g[head]/g[tail]``.
        Normalised internally so ``g[source] == 1`` (the paper's convention);
        normalisation leaves every gain unchanged.
    costs:
        Per-edge compute cost ``c_ik(j) > 0``.
    """

    def __init__(
        self,
        name: str,
        source: str,
        sink: str,
        max_rate: float,
        edges: Iterable[Edge],
        potentials: Mapping[str, float],
        costs: Mapping[Edge, float],
        utility: Optional[UtilityFunction] = None,
    ) -> None:
        if not name:
            raise ValidationError("commodity name must be non-empty")
        if source == sink:
            raise ValidationError(f"commodity {name!r}: source equals sink")
        if not max_rate > 0:
            raise ValidationError(
                f"commodity {name!r}: max_rate must be > 0, got {max_rate}"
            )
        self.name = name
        self.source = source
        self.sink = sink
        self.max_rate = float(max_rate)
        self.utility: UtilityFunction = utility or LinearUtility()
        self.edges: List[Edge] = list(dict.fromkeys(edges))
        if not self.edges:
            raise ValidationError(f"commodity {name!r}: empty edge set")

        nodes = {n for e in self.edges for n in e}
        missing = nodes - set(potentials)
        if missing:
            raise ValidationError(
                f"commodity {name!r}: missing potentials for {sorted(missing)}"
            )
        if source not in nodes or sink not in nodes:
            raise ValidationError(
                f"commodity {name!r}: source/sink not covered by edge set"
            )
        for n in nodes:
            if not potentials[n] > 0:
                raise ValidationError(
                    f"commodity {name!r}: potential of {n!r} must be > 0"
                )
        norm = float(potentials[source])
        self.potentials: Dict[str, float] = {
            n: float(potentials[n]) / norm for n in nodes
        }

        missing_costs = set(self.edges) - set(costs)
        if missing_costs:
            raise ValidationError(
                f"commodity {name!r}: missing costs for {sorted(missing_costs)}"
            )
        for e in self.edges:
            if not costs[e] > 0:
                raise ValidationError(f"commodity {name!r}: cost of {e} must be > 0")
        self.costs: Dict[Edge, float] = {e: float(costs[e]) for e in self.edges}

        self._check_dag_and_reachability()

    # -- derived quantities ------------------------------------------------------
    def gain(self, tail: str, head: str) -> float:
        """The shrinkage/expansion factor ``beta_ik(j) = g_k / g_i``."""
        if (tail, head) not in self.costs:
            raise ModelError(
                f"commodity {self.name!r} has no edge ({tail!r}, {head!r})"
            )
        return self.potentials[head] / self.potentials[tail]

    def cost(self, tail: str, head: str) -> float:
        """Per-unit compute cost ``c_ik(j)`` of edge ``(tail, head)``."""
        try:
            return self.costs[(tail, head)]
        except KeyError:
            raise ModelError(
                f"commodity {self.name!r} has no edge ({tail!r}, {head!r})"
            ) from None

    @property
    def nodes(self) -> List[str]:
        seen: Dict[str, None] = {}
        for tail, head in self.edges:
            seen.setdefault(tail)
            seen.setdefault(head)
        return list(seen)

    def subgraph(self) -> "nx.DiGraph":
        """The commodity DAG ``G_j`` with ``gain``/``cost`` edge attributes."""
        graph = nx.DiGraph()
        graph.add_nodes_from(self.nodes)
        for tail, head in self.edges:
            graph.add_edge(
                tail, head, gain=self.gain(tail, head), cost=self.cost(tail, head)
            )
        return graph

    def topological_order(self) -> List[str]:
        """Nodes of ``G_j`` in a topological order (source first)."""
        return list(nx.topological_sort(self.subgraph()))

    # -- validation ----------------------------------------------------------------
    def _check_dag_and_reachability(self) -> None:
        graph = nx.DiGraph(self.edges)
        if not nx.is_directed_acyclic_graph(graph):
            raise ValidationError(
                f"commodity {self.name!r}: edge set is not a DAG "
                f"(paper assumes per-stream DAGs)"
            )
        if not nx.has_path(graph, self.source, self.sink):
            raise ValidationError(
                f"commodity {self.name!r}: sink unreachable from source"
            )
        # every edge should lie on some source->sink path; dangling edges can
        # never carry useful flow and usually indicate a modelling bug.
        reach_from_src = nx.descendants(graph, self.source) | {self.source}
        reach_to_sink = nx.ancestors(graph, self.sink) | {self.sink}
        useful = reach_from_src & reach_to_sink
        dangling = [
            e for e in self.edges if e[0] not in useful or e[1] not in useful
        ]
        if dangling:
            raise ValidationError(
                f"commodity {self.name!r}: edges not on any source->sink path: "
                f"{dangling}; prune them (see Commodity.pruned)"
            )

    def validate_against(self, network: PhysicalNetwork) -> None:
        """Check this commodity is realisable on ``network``."""
        for tail, head in self.edges:
            if not network.has_link(tail, head):
                raise ValidationError(
                    f"commodity {self.name!r} uses edge ({tail!r}, {head!r}) "
                    f"absent from the physical network"
                )
        if network.node(self.source).is_sink:
            raise ValidationError(
                f"commodity {self.name!r}: source {self.source!r} is a sink node"
            )
        if not network.node(self.sink).is_sink:
            raise ValidationError(
                f"commodity {self.name!r}: sink {self.sink!r} is not a sink node"
            )
        for tail, head in self.edges:
            if network.node(tail).is_sink:
                raise ValidationError(
                    f"commodity {self.name!r}: sink {tail!r} cannot process"
                )

    # -- constructors ---------------------------------------------------------------
    @classmethod
    def from_subgraph(
        cls,
        name: str,
        source: str,
        sink: str,
        max_rate: float,
        edges: Iterable[Edge],
        potentials: Mapping[str, float],
        costs: Mapping[Edge, float],
        utility: Optional[UtilityFunction] = None,
        prune: bool = False,
    ) -> "Commodity":
        """Build from an explicit edge set; optionally prune dangling edges."""
        edges = list(dict.fromkeys(edges))
        if prune:
            graph = nx.DiGraph(edges)
            if source not in graph or sink not in graph or not nx.has_path(
                graph, source, sink
            ):
                raise ValidationError(
                    f"commodity {name!r}: sink unreachable from source"
                )
            useful = (nx.descendants(graph, source) | {source}) & (
                nx.ancestors(graph, sink) | {sink}
            )
            edges = [e for e in edges if e[0] in useful and e[1] in useful]
        return cls(
            name=name,
            source=source,
            sink=sink,
            max_rate=max_rate,
            edges=edges,
            potentials=potentials,
            costs=costs,
            utility=utility,
        )

    @classmethod
    def from_task_chain(
        cls,
        name: str,
        network: PhysicalNetwork,
        tasks: Sequence[Task],
        placement: Mapping[str, Iterable[str]],
        source: str,
        sink: str,
        max_rate: float,
        utility: Optional[UtilityFunction] = None,
    ) -> "Commodity":
        """Build a commodity from a task chain and a task->servers placement.

        This mirrors the paper's Figure-1 construction: tasks ``T_1 .. T_m``
        must be completed in order; ``placement[task.name]`` lists the servers
        hosting each task (a task may be replicated on several servers); the
        source hosts ``T_1``; results of ``T_m`` are shipped to ``sink``.
        Node ``i`` hosting ``T_l`` has, for each layer-``l+1`` host ``k``
        physically linked from ``i``, an edge with ``cost = T_l.cost`` and
        ``gain = T_l.gain``.  Hosts not reachable on any full chain are
        pruned, as in the paper's example.
        """
        if not tasks:
            raise ValidationError(f"commodity {name!r}: empty task chain")
        layers: List[List[str]] = []
        for task in tasks:
            hosts = list(dict.fromkeys(placement.get(task.name, ())))
            if not hosts:
                raise ValidationError(
                    f"commodity {name!r}: task {task.name!r} has no placement"
                )
            layers.append(hosts)
        if layers[0] != [source]:
            raise ValidationError(
                f"commodity {name!r}: first task must be placed exactly on the "
                f"source {source!r}, got {layers[0]}"
            )
        layers.append([sink])

        edges: List[Edge] = []
        costs: Dict[Edge, float] = {}
        potentials: Dict[str, float] = {}
        cumulative_gain = 1.0
        for depth, task in enumerate(tasks):
            for host in layers[depth]:
                potentials[host] = cumulative_gain
            for tail in layers[depth]:
                for head in layers[depth + 1]:
                    if network.has_link(tail, head):
                        edge = (tail, head)
                        edges.append(edge)
                        costs[edge] = task.cost
            cumulative_gain *= task.gain
        potentials[sink] = cumulative_gain

        if not edges:
            raise ValidationError(
                f"commodity {name!r}: placement induces no usable edges"
            )
        commodity = cls.from_subgraph(
            name=name,
            source=source,
            sink=sink,
            max_rate=max_rate,
            edges=edges,
            potentials=potentials,
            costs=costs,
            utility=utility,
            prune=True,
        )
        commodity.validate_against(network)
        return commodity

    def __repr__(self) -> str:
        return (
            f"Commodity({self.name!r}, {self.source!r}->{self.sink!r}, "
            f"lambda={self.max_rate}, |E_j|={len(self.edges)})"
        )


@dataclass
class StreamNetwork:
    """The complete problem instance: physical network plus commodities.

    This is the main user-facing model object; hand it to
    :func:`repro.solve` or to the algorithm classes.
    """

    physical: PhysicalNetwork
    commodities: List[Commodity] = field(default_factory=list)

    def add_commodity(self, commodity: Commodity) -> Commodity:
        if any(c.name == commodity.name for c in self.commodities):
            raise ModelError(f"duplicate commodity {commodity.name!r}")
        commodity.validate_against(self.physical)
        self.commodities.append(commodity)
        return commodity

    def commodity(self, name: str) -> Commodity:
        for c in self.commodities:
            if c.name == name:
                return c
        raise ModelError(f"unknown commodity {name!r}")

    @property
    def num_commodities(self) -> int:
        return len(self.commodities)

    def validate(self, require_connected: bool = True) -> None:
        """Validate the physical layer and every commodity against it.

        ``require_connected=False`` skips the weak-connectivity check of the
        physical graph; used after failure events, which may legitimately
        split the system into independent islands that each keep operating.
        """
        if require_connected:
            self.physical.validate()
        else:
            if not self.physical.nodes:
                raise ValidationError("network has no nodes")
        if not self.commodities:
            raise ValidationError("stream network has no commodities")
        sinks_used = [c.sink for c in self.commodities]
        if len(set(sinks_used)) != len(sinks_used):
            raise ValidationError(
                "each commodity must have a unique sink node (paper, Section 2)"
            )
        for c in self.commodities:
            c.validate_against(self.physical)

    def __repr__(self) -> str:
        return (
            f"StreamNetwork(nodes={self.physical.num_nodes}, "
            f"links={self.physical.num_links}, commodities={self.num_commodities})"
        )


def validate_property1(
    edges: Iterable[Edge], gains: Mapping[Edge, float], rel_tol: float = 1e-9
) -> Dict[str, float]:
    """Check Property 1 for a user-supplied per-edge gain table.

    Property 1 (paper, Section 2) demands the product of gains along any two
    paths with common endpoints be equal.  That holds iff ``log(gain)`` is a
    potential difference; we recover potentials by BFS over the weakly
    connected components and verify every edge agrees.

    Returns the recovered potentials (one arbitrary node per component pinned
    to 1.0).  Raises :class:`ValidationError` if Property 1 fails.
    """
    edges = list(edges)
    graph = nx.Graph()
    directed: Dict[Edge, float] = {}
    for (tail, head) in edges:
        if (tail, head) not in gains:
            raise ValidationError(f"missing gain for edge ({tail!r}, {head!r})")
        g = float(gains[(tail, head)])
        if not g > 0:
            raise ValidationError(f"gain of ({tail!r}, {head!r}) must be > 0")
        directed[(tail, head)] = g
        graph.add_edge(tail, head)

    potentials: Dict[str, float] = {}
    for component in nx.connected_components(graph):
        root = min(component)
        potentials[root] = 1.0
        for parent, child in nx.bfs_edges(graph, root):
            if (parent, child) in directed:
                potentials[child] = potentials[parent] * directed[(parent, child)]
            else:
                potentials[child] = potentials[parent] / directed[(child, parent)]

    for (tail, head), g in directed.items():
        implied = potentials[head] / potentials[tail]
        if not math.isclose(implied, g, rel_tol=rel_tol):
            raise ValidationError(
                f"Property 1 violated at edge ({tail!r}, {head!r}): "
                f"gain {g} but path-consistent value is {implied}"
            )
    return potentials


def potentials_from_gains(
    edges: Iterable[Edge], gains: Mapping[Edge, float]
) -> Dict[str, float]:
    """Alias of :func:`validate_property1` emphasising the returned potentials."""
    return validate_property1(edges, gains)
