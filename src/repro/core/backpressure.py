"""Back-pressure baseline algorithm (paper Section 6; Broberg et al. [6]).

The paper compares its gradient algorithm against the back-pressure scheme of
the authors' earlier SIGMETRICS'06 work [6]: *"Each node maintains local
input and output buffers for each commodity [and] a potential function.  The
algorithm is iterative and, at each iteration, a node only needs to know the
buffer levels at its neighboring nodes.  It then uses this information to
determine the appropriate resource allocation that reduces the potential at
that node by the greatest amount."*  The paper also notes [6] "handles linear
utility functions" -- the baseline targets throughput-style objectives.

The full text of [6] is not available, so this module implements the
canonical member of that family (Awerbuch-Leighton-style local potential
reduction) adapted to flows with gains; the substitution is recorded in
DESIGN.md:

* every capacity node keeps a buffer ``q_i(j)`` per commodity (node-local
  units, i.e. post-gain); the system potential is the quadratic
  ``Phi = sum q_i(j)^2``;
* **admission**: each slot the source buffer accepts
  ``min(lambda_j, buffer_cap - q)`` -- excess input overflows and is shed,
  which is precisely the admission-control mechanism of bounded-buffer
  multicommodity-flow algorithms;
* **allocation**: each node chooses the out-edge flows that maximise its own
  potential decrease.  Moving ``x`` (tail units) of commodity ``j`` over edge
  ``e`` changes the potential by ``-2 w_j (q_i - beta_e q_head) x +
  w_j (1 + beta_e^2) x^2`` (sinks absorb: ``q_head = 0``), so the
  unconstrained per-edge optimum is the *balancing* move
  ``x* = max(0, (q_i - beta_e q_head) / (1 + beta_e^2))``; moves are then
  scaled back proportionally to respect the commodity buffer content and the
  node's resource budget ``sum_e c_e x_e <= C_i``;
* each iteration exchanges only neighbour buffer levels: O(1) message rounds,
  versus the gradient algorithm's O(longest path) wave.

Because every step only *equilibrates* neighbouring buffers (a diffusion),
useful end-to-end gradients build up slowly and the delivered-rate time
average converges orders of magnitude slower than the gradient algorithm --
the behaviour Figure 4 reports (~100,000 iterations to reach 95% of optimal
versus ~1,000).

Throughput is measured the way Figure 4 plots it: the utility of the
*time-averaged* delivered rates.  The hot loop is fully vectorised (flat
pair arrays + scatter updates) so 100k+ iterations finish in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.result import RunResultMixin
from repro.core.solution import Solution
from repro.core.transform import ExtendedNetwork, ExtEdgeKind
from repro.exceptions import SimulationError
from repro.obs.instrumentation import NULL_INSTRUMENTATION

__all__ = [
    "BackpressureConfig",
    "BackpressureRecord",
    "BackpressureResult",
    "BackpressureAlgorithm",
]


@dataclass
class BackpressureConfig:
    """Parameters of the back-pressure baseline.

    ``buffer_cap`` bounds every buffer; input that finds a full source buffer
    is shed.  Larger caps let the algorithm get closer to the optimum but
    deepen the diffusive transient (the classic accuracy/speed trade of
    bounded-buffer flow algorithms).
    """

    buffer_cap: float = 200.0
    slot_length: float = 1.0
    max_iterations: int = 100000
    record_every: int = 100

    def __post_init__(self) -> None:
        if self.buffer_cap <= 0:
            raise ValueError("buffer_cap must be > 0")
        if self.slot_length <= 0:
            raise ValueError("slot_length must be > 0")
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if self.record_every < 1:
            raise ValueError("record_every must be >= 1")


@dataclass
class BackpressureRecord:
    iteration: int
    utility: float  # utility of time-averaged delivered rates
    average_rates: np.ndarray
    total_queue: float


@dataclass
class BackpressureResult(RunResultMixin):
    """Outcome of a back-pressure run; implements the ``RunResult`` protocol.

    ``costs`` is all-NaN: the baseline optimises a queue potential, not the
    penalised objective ``A``, so no per-record cost is defined.
    """

    history: List[BackpressureRecord]
    average_rates: np.ndarray  # final time-averaged delivered rate per commodity
    utility: float
    iterations: int
    messages_per_iteration: int
    solution: Optional[Solution] = None

    @property
    def final_utility(self) -> float:
        return float(self.utility)


class BackpressureAlgorithm:
    """Vectorised synchronous potential-balancing back-pressure baseline."""

    def __init__(
        self, ext: ExtendedNetwork, config: Optional[BackpressureConfig] = None
    ):
        self.ext = ext
        self.config = config or BackpressureConfig()
        self._build_static_structures()

    # -- static precomputation ---------------------------------------------------
    def _build_static_structures(self) -> None:
        ext = self.ext
        pair_j: List[int] = []
        pair_edge: List[int] = []
        for view in ext.commodities:
            for e in view.edge_indices:
                kind = ext.edges[e].kind
                if kind in (ExtEdgeKind.PROCESSING, ExtEdgeKind.TRANSFER):
                    pair_j.append(view.index)
                    pair_edge.append(e)
        if not pair_j:
            raise SimulationError("no schedulable edges for back-pressure")

        self.pair_j = np.array(pair_j, dtype=int)
        self.pair_edge = np.array(pair_edge, dtype=int)
        self.pair_tail = ext.edge_tail[self.pair_edge]
        self.pair_head = ext.edge_head[self.pair_edge]
        self.pair_cost = ext.cost[self.pair_j, self.pair_edge]
        self.pair_gain = ext.gain[self.pair_j, self.pair_edge]
        sink_set = {view.sink for view in ext.commodities}
        self.pair_head_is_sink = np.array(
            [h in sink_set for h in self.pair_head], dtype=bool
        )

        # cumulative gain from the source to each pair's tail (source units ->
        # tail units); well defined by Property 1.  Used to convert delivered
        # tail-unit flow back to source units.
        potentials = self._node_potentials()
        self.pair_tail_potential = potentials[self.pair_j, self.pair_tail]

        self.source_nodes = np.array([v.source for v in ext.commodities], dtype=int)
        self.lam = ext.lam.copy()

        # neighbour pairs whose buffer levels are exchanged each iteration
        neighbour_pairs = {
            (int(t), int(h)) for t, h in zip(self.pair_tail, self.pair_head)
        }
        self.messages_per_iteration = 2 * len(neighbour_pairs)

    def _node_potentials(self) -> np.ndarray:
        """``g_i(j)``: cumulative gain from dummy source to node ``i`` (a
        consequence of Property 1), computed along each commodity DAG."""
        ext = self.ext
        g = np.ones((ext.num_commodities, ext.num_nodes), dtype=float)
        for view in ext.commodities:
            j = view.index
            seen = {view.dummy}
            for node in view.topo_order:
                for e in ext.commodity_out_edges[j][node]:
                    if e == view.difference_edge:
                        # the shed shortcut is priced in lambda-units by Y and
                        # is exempt from Property 1; skip it here
                        continue
                    head = ext.edge_head[e]
                    value = g[j, node] * ext.gain[j, e]
                    if head in seen:
                        if not np.isclose(g[j, head], value, rtol=1e-8):
                            raise SimulationError(
                                f"Property 1 violated for commodity {view.name!r}"
                            )
                    else:
                        g[j, head] = value
                        seen.add(head)
        return g

    # -- main loop -----------------------------------------------------------------
    def run(self, instrumentation=None, validate=False) -> BackpressureResult:
        """Run the baseline; ``instrumentation`` records the sampled
        trajectory, message totals, and whole-run timing (read-only).
        ``validate`` (``True`` or ``"strict"``) audits the result afterward
        (flow checks are skipped: the baseline keeps no routing state)."""
        inst = instrumentation if instrumentation is not None else NULL_INSTRUMENTATION
        with inst.phase("backpressure_run"):
            result = self._run(inst)
        if validate:
            from repro.validate import attach_validation

            attach_validation(result, self.ext, mode=validate, instrumentation=inst)
        return result

    def _run(self, inst) -> BackpressureResult:
        ext = self.ext
        cfg = self.config
        num_j = ext.num_commodities
        dt = cfg.slot_length

        queues = np.zeros((num_j, ext.num_nodes), dtype=float)
        delivered = np.zeros(num_j, dtype=float)  # cumulative, source units
        history: List[BackpressureRecord] = []
        utilities = [v.utility for v in ext.commodities]
        average_rates = np.zeros(num_j, dtype=float)
        j_range = np.arange(num_j)

        head_q = np.empty(len(self.pair_j), dtype=float)
        one_plus_gain_sq = 1.0 + self.pair_gain**2
        node_capacity = ext.capacity  # inf for dummies/sinks (never tails here)

        for slot in range(1, cfg.max_iterations + 1):
            # 1. admission: source buffers accept input up to the cap
            room = cfg.buffer_cap - queues[j_range, self.source_nodes]
            queues[j_range, self.source_nodes] += np.minimum(self.lam * dt, room)

            # 2. potential-balancing allocation
            tail_q = queues[self.pair_j, self.pair_tail]
            np.copyto(head_q, queues[self.pair_j, self.pair_head])
            head_q[self.pair_head_is_sink] = 0.0
            desired = np.maximum(
                0.0, (tail_q - self.pair_gain * head_q) / one_plus_gain_sq
            )

            # scale to the available buffer content per (commodity, tail)
            outflow = np.zeros((num_j, ext.num_nodes), dtype=float)
            np.add.at(outflow, (self.pair_j, self.pair_tail), desired)
            with np.errstate(divide="ignore", invalid="ignore"):
                buffer_scale = np.where(
                    outflow > 0.0, np.minimum(1.0, queues / np.maximum(outflow, 1e-300)), 1.0
                )
            flow = desired * buffer_scale[self.pair_j, self.pair_tail]

            # enforce the node resource budget.  At oversubscribed nodes the
            # potential-greedy allocation is a water-filling: the node prices
            # its resource at mu >= 0 and every move shrinks by
            # mu * c_e / (2 * (1 + beta_e^2)) (the KKT condition of the
            # node-local quadratic), clipped at zero -- this is "the
            # allocation that reduces the potential by the greatest amount"
            # under the budget.  mu is found by vectorised bisection, one
            # multiplier per node, all nodes at once.
            usage = np.zeros(ext.num_nodes, dtype=float)
            np.add.at(usage, self.pair_tail, flow * self.pair_cost)
            over = usage > node_capacity * dt
            if np.any(over):
                pair_over = over[self.pair_tail]
                idx = np.nonzero(pair_over)[0]
                tails = self.pair_tail[idx]
                base = flow[idx]
                slope = self.pair_cost[idx] / (2.0 * one_plus_gain_sq[idx])
                budget = node_capacity * dt
                lo = np.zeros(ext.num_nodes, dtype=float)
                hi = np.zeros(ext.num_nodes, dtype=float)
                np.maximum.at(hi, tails, 2.0 * base / np.maximum(slope, 1e-300))
                for _ in range(25):
                    mu = 0.5 * (lo + hi)
                    trial = np.maximum(0.0, base - mu[tails] * slope)
                    used = np.zeros(ext.num_nodes, dtype=float)
                    np.add.at(used, tails, trial * self.pair_cost[idx])
                    too_high = used > budget
                    lo = np.where(too_high & over, mu, lo)
                    hi = np.where(too_high | ~over, hi, mu)
                flow[idx] = np.maximum(0.0, base - hi[tails] * slope)

            # 3. apply moves
            np.add.at(queues, (self.pair_j, self.pair_tail), -flow)
            into_net = ~self.pair_head_is_sink
            np.add.at(
                queues,
                (self.pair_j[into_net], self.pair_head[into_net]),
                self.pair_gain[into_net] * flow[into_net],
            )
            at_sink = self.pair_head_is_sink
            np.add.at(
                delivered,
                self.pair_j[at_sink],
                flow[at_sink] / self.pair_tail_potential[at_sink],
            )
            np.maximum(queues, 0.0, out=queues)  # absorb roundoff

            # 4. bookkeeping
            if slot % cfg.record_every == 0 or slot == cfg.max_iterations:
                average_rates = np.minimum(delivered / (slot * dt), self.lam)
                utility = float(
                    sum(u.value(a) for u, a in zip(utilities, average_rates))
                )
                record = BackpressureRecord(
                    iteration=slot,
                    utility=utility,
                    average_rates=average_rates.copy(),
                    total_queue=float(queues.sum()),
                )
                history.append(record)
                if inst.enabled:
                    inst.iteration(
                        slot, utility=utility, total_queue=record.total_queue
                    )

        average_rates = np.minimum(delivered / (cfg.max_iterations * dt), self.lam)
        final_utility = float(
            sum(u.value(a) for u, a in zip(utilities, average_rates))
        )
        solution = Solution(
            ext=ext,
            admitted=average_rates,
            utility=final_utility,
            cost=float("nan"),
            method="backpressure",
            routing=None,
            iterations=cfg.max_iterations,
        )
        if inst.enabled:
            # one buffer-level exchange per neighbour pair per slot: O(1)
            # rounds, so the totals are exact products, not per-slot counts
            inst.messages(
                "buffer_exchange",
                messages=self.messages_per_iteration * cfg.max_iterations,
                bytes=24 * self.messages_per_iteration * cfg.max_iterations,
                rounds=1,
            )
            inst.gauge("iterations_total", cfg.max_iterations)
            inst.gauge("final_utility", final_utility)
        return BackpressureResult(
            history=history,
            average_rates=average_rates,
            utility=final_utility,
            iterations=cfg.max_iterations,
            messages_per_iteration=self.messages_per_iteration,
            solution=solution,
        )
