"""Core model and algorithms of the ICDCS'07 reproduction."""

from repro.core.admission import AdmissionController, TokenBucket
from repro.core.backpressure import (
    BackpressureAlgorithm,
    BackpressureConfig,
    BackpressureResult,
)
from repro.core.commodity import Commodity, StreamNetwork, Task, validate_property1
from repro.core.context import IterationContext, build_iteration_context
from repro.core.gradient import GradientAlgorithm, GradientConfig, GradientResult
from repro.core.marginals import CostModel, evaluate_cost, optimality_residual
from repro.core.network import Link, Node, NodeKind, PhysicalNetwork
from repro.core.optimal import solve_concave, solve_lp, solve_optimal
from repro.core.penalty import InverseBarrier, LogBarrier, QuadraticOverload
from repro.core.result import OptimalResult, RunResult, RunResultMixin
from repro.core.routing import (
    RoutingState,
    admitted_rates,
    feasibility_report,
    initial_routing,
    resource_usage,
    solve_traffic,
)
from repro.core.solution import Solution, build_solution
from repro.core.transform import ExtendedNetwork, build_extended_network
from repro.core.utility import (
    AlphaFairUtility,
    CappedLinearUtility,
    LinearUtility,
    LogUtility,
    SqrtUtility,
)

__all__ = [
    "AdmissionController",
    "TokenBucket",
    "BackpressureAlgorithm",
    "BackpressureConfig",
    "BackpressureResult",
    "Commodity",
    "StreamNetwork",
    "Task",
    "validate_property1",
    "IterationContext",
    "build_iteration_context",
    "GradientAlgorithm",
    "GradientConfig",
    "GradientResult",
    "CostModel",
    "evaluate_cost",
    "optimality_residual",
    "Link",
    "Node",
    "NodeKind",
    "PhysicalNetwork",
    "solve_concave",
    "solve_lp",
    "solve_optimal",
    "InverseBarrier",
    "LogBarrier",
    "QuadraticOverload",
    "OptimalResult",
    "RunResult",
    "RunResultMixin",
    "RoutingState",
    "admitted_rates",
    "feasibility_report",
    "initial_routing",
    "resource_usage",
    "solve_traffic",
    "Solution",
    "build_solution",
    "ExtendedNetwork",
    "build_extended_network",
    "AlphaFairUtility",
    "CappedLinearUtility",
    "LinearUtility",
    "LogUtility",
    "SqrtUtility",
]
