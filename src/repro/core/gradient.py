"""The paper's distributed gradient-based algorithm (Section 5).

Each iteration applies the update map ``Gamma`` (eqs. (14)-(17)) to the
routing variables of every commodity at every node:

1. **Marginal-cost wave** -- compute ``dA/dr_i(j)`` by the upstream recursion
   (eq. (9)) and the per-edge marginals ``delta_e(j)`` (eq. (15)'s bracket),
   together with the loop-freedom tags (eq. (18));
2. **Routing update** -- each node shifts routing fraction away from
   expensive out-edges toward its cheapest non-blocked out-edge: the
   reduction on edge ``e`` is ``Delta_e = min(phi_e, eta * a_e / t_i)`` where
   ``a_e = delta_e - min_m delta_m`` (eqs. (16)-(17)), and blocked edges stay
   at zero (eq. (14));
3. **Forecast / allocation** -- the flow balance (eq. (3)) is re-solved under
   the new fractions.  In the unified single-resource-per-node cost model
   produced by the extended-graph transformation, the optimal *local*
   resource allocation at each node is exactly to serve its forecast flows,
   so this phase needs no further optimisation (the paper's node-level
   "independent resource optimization" is closed-form here).

The class below is the fast synchronous reference implementation: it executes
the identical update the per-node agents of :mod:`repro.simulation` compute
by message passing (equivalence is covered by integration tests).

Admission control falls out for free: the routing fraction on each dummy
input link *is* the admitted share of the offered load.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.core.blocking import compute_blocked_sets_scalar
from repro.core.context import IterationContext
from repro.core.marginals import (
    CostModel,
    edge_marginals,
    link_cost_derivative,
    marginal_cost_to_destination_scalar,
    optimality_residual,
)
from repro.core.result import RunResultMixin
from repro.core.routing import (
    RoutingState,
    initial_routing,
    resource_usage,
    solve_traffic_scalar,
    utilization_profile,
    validate_routing,
)
from repro.core.solution import Solution, build_solution
from repro.core.transform import CommodityGammaPlan, ExtendedNetwork
from repro.exceptions import ConvergenceError
from repro.obs.instrumentation import NULL_INSTRUMENTATION

__all__ = [
    "GradientConfig",
    "IterationRecord",
    "GradientResult",
    "GradientAlgorithm",
    "apply_gamma_at_node",
    "apply_gamma_batch",
]


def apply_gamma_at_node(
    phi_row: np.ndarray,
    t_i: float,
    out: List[int],
    delta: np.ndarray,
    blocked: Optional[np.ndarray],
    eta: float,
    traffic_tol: float,
) -> None:
    """Eqs. (14)-(17) at a single node for a single commodity (in place).

    This is the *entire* node-local computation of the update map ``Gamma``;
    both the synchronous engine below and the message-passing agents of
    :mod:`repro.simulation.agent` call exactly this function, which is what
    makes their iterates bit-identical.

    Parameters
    ----------
    phi_row:
        The commodity's routing fractions, indexed by global edge id
        (modified in place on the node's out-edges only).
    t_i:
        The node's commodity traffic ``t_i(j)``.
    out:
        Global edge ids of the node's allowed out-edges.
    delta:
        Per-edge marginal costs ``delta_e(j)`` (eq. (15)'s bracket).
    blocked:
        Optional bool mask over edges; blocked edges stay at zero (eq. (14)).
    eta:
        The scale factor of ``Gamma``.
    traffic_tol:
        Below this traffic the node is idle and jumps to its best link.
    """
    if blocked is not None:
        eligible = [e for e in out if not blocked[e]]
    else:
        eligible = list(out)
    if not eligible:
        return  # cannot move anything; keep fractions as they are

    deltas = delta[eligible]
    best_pos = int(np.argmin(deltas))
    best_edge = eligible[best_pos]
    best_delta = float(deltas[best_pos])

    if t_i <= traffic_tol:
        # Idle node: put everything on the current best link (the limit of
        # Gamma as Delta caps at phi); costs nothing, speeds later moves.
        for e in out:
            phi_row[e] = 0.0
        phi_row[best_edge] = 1.0
        return

    moved = 0.0
    for e in eligible:
        if e == best_edge:
            continue
        frac = phi_row[e]
        if frac == 0.0:
            continue
        a_e = delta[e] - best_delta
        reduction = min(frac, eta * a_e / t_i)
        if reduction > 0.0:
            phi_row[e] = frac - reduction
            moved += reduction
    if moved > 0.0:
        phi_row[best_edge] += moved

    # Guard against drift over thousands of iterations.  Only the *eligible*
    # fractions may be rescaled: eq. (14) freezes blocked edges at their
    # current (zero) value, so they must not absorb any of the correction.
    free = 0.0
    frozen = 0.0
    for e in out:
        if blocked is not None and blocked[e]:
            frozen += phi_row[e]
        else:
            free += phi_row[e]
    if free > 0.0 and abs((free + frozen) - 1.0) > 1e-12:
        scale = (1.0 - frozen) / free
        for e in eligible:
            phi_row[e] *= scale


def apply_gamma_batch(
    phi_row: np.ndarray,
    plan: CommodityGammaPlan,
    traffic_row: np.ndarray,
    delta: np.ndarray,
    blocked: Optional[np.ndarray],
    eta: float,
    traffic_tol: float,
) -> None:
    """Eqs. (14)-(17) for *all* of a commodity's nodes in one vectorized pass.

    Bit identical to calling :func:`apply_gamma_at_node` at each node of
    ``plan`` (the sync/distributed equivalence tests pin this): every float
    operation mirrors the scalar kernel's, and all per-node sums accumulate
    left to right via a loop over the (small, padded) out-edge columns.
    Nodes update disjoint out-edge sets, so batching over them is exact.

    Parameters mirror :func:`apply_gamma_at_node`, with ``plan`` replacing
    the per-node ``out`` list and ``traffic_row`` carrying ``t_i(j)`` for
    every extended node.
    """
    if plan.nodes.size == 0:
        return
    edge_matrix = plan.edge_matrix
    valid = plan.valid
    num_nodes, width = edge_matrix.shape
    rows = plan.rows

    # padding cells (valid == False) gather garbage from index 0; every read
    # below is masked by ``valid``/``eligible``/``apply`` before it matters,
    # and the write-back only copies the valid cells out again
    phi = phi_row[edge_matrix]
    delta2d = delta[edge_matrix]
    if blocked is None:
        # every plan row is a branch node (>= 2 valid out-edges), so with no
        # blocking nothing can make a row ineligible
        eligible = valid
        has_eligible = None
    else:
        eligible = valid & ~blocked[edge_matrix]
        has_eligible = eligible.any(axis=1)
        if not has_eligible.any():
            return

    # first eligible edge attaining the eligible minimum (scalar argmin order)
    keyed = np.where(eligible, delta2d, np.inf)
    best_col = np.argmin(keyed, axis=1)
    ok = eligible[rows, best_col]
    if not ok.all():
        # a row whose eligible deltas are all inf (or with nothing eligible)
        # can argmin to an ineligible column; snap to the first eligible one
        best_col = np.where(ok, best_col, np.argmax(eligible, axis=1))
    t_i = traffic_row[plan.nodes]
    if has_eligible is None:
        best_delta = keyed[rows, best_col]
        idle = t_i <= traffic_tol
        active = ~idle
    else:
        # rows with nothing eligible keep their fractions; zero their (unused)
        # best delta so the subtraction below never forms inf - inf
        best_delta = np.where(has_eligible, keyed[rows, best_col], 0.0)
        idle = has_eligible & (t_i <= traffic_tol)
        active = has_eligible & ~idle

    if active.any():
        t_safe = np.where(t_i > 0.0, t_i, 1.0)
        a_2d = delta2d - best_delta[:, None]
        reduction = np.minimum(phi, (eta * a_2d) / t_safe[:, None])
        apply = (
            active[:, None] & eligible & (phi != 0.0) & (reduction > 0.0)
        )
        apply[rows, best_col] = False  # the best edge only ever gains
        reduction = np.where(apply, reduction, 0.0)
        phi = phi - reduction  # x - 0.0 == x bitwise for the masked cells
        moved = np.zeros(num_nodes, dtype=float)
        for col in range(width):  # left-to-right, like the scalar accumulator
            moved += reduction[:, col]
        phi[rows, best_col] += moved  # already +0.0 on every inactive row

        # eligible-only drift renormalization (scalar kernel's exact sums)
        free = np.zeros(num_nodes, dtype=float)
        phi_free = np.where(eligible, phi, 0.0)
        for col in range(width):
            free += phi_free[:, col]
        if blocked is None:
            # nothing is frozen: free + 0.0 == free and 1.0 - 0.0 == 1.0
            # bitwise, so the frozen sums drop out of the scalar's formulas
            total = free
            numer = 1.0
        else:
            frozen = np.zeros(num_nodes, dtype=float)
            phi_frozen = np.where(valid & ~eligible, phi, 0.0)
            for col in range(width):
                frozen += phi_frozen[:, col]
            total = free + frozen
            numer = 1.0 - frozen
        need = active & (free > 0.0) & (np.abs(total - 1.0) > 1e-12)
        if need.any():
            scale = numer / np.where(free > 0.0, free, 1.0)
            phi = np.where(
                need[:, None] & eligible, phi * scale[:, None], phi
            )

    if idle.any():
        phi[idle] = 0.0
        phi[idle, best_col[idle]] = 1.0

    phi_row[plan.targets] = phi[valid]


@dataclass
class GradientConfig:
    """Parameters of the gradient-based algorithm.

    ``eta`` is the scale factor of ``Gamma`` (paper Figure 4 uses 0.04: small
    enough to converge, large enough to reach 95% of optimal in about a
    thousand iterations).  ``cost_model`` carries the penalty ``D`` and the
    coefficient ``eps`` (0.2 in the paper).
    """

    eta: float = 0.04
    cost_model: CostModel = field(default_factory=CostModel)
    max_iterations: int = 20000
    tolerance: float = 1e-9  # relative cost change considered "no progress"
    patience: int = 25  # consecutive no-progress iterations => converged
    use_blocking: bool = True
    traffic_tol: float = 1e-12  # below this a node counts as carrying no traffic
    record_every: int = 1  # history sampling period

    # Adaptive step scale.  The stable eta depends on the instance (the paper
    # tunes it by hand; congested instances need smaller steps).  With
    # ``adaptive_eta`` the run monitors the global cost A and backs the step
    # scale off whenever an iteration *increases* it -- the oscillation
    # signature -- then creeps back up on sustained progress.  This uses a
    # global signal, so it models a control plane watching the system rather
    # than the pure per-node protocol; all paper-faithful experiments keep it
    # off (the default).
    adaptive_eta: bool = False
    eta_backoff: float = 0.5
    eta_growth: float = 1.02
    eta_min_factor: float = 1e-4  # floor: eta * eta_min_factor
    eta_max_factor: float = 1.0  # ceiling: eta * eta_max_factor

    def __post_init__(self) -> None:
        if not self.eta > 0:
            raise ValueError(f"eta must be > 0, got {self.eta}")
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if not 0.0 < self.eta_backoff < 1.0:
            raise ValueError("eta_backoff must be in (0, 1)")
        if not self.eta_growth >= 1.0:
            raise ValueError("eta_growth must be >= 1")
        if not 0.0 < self.eta_min_factor <= 1.0:
            raise ValueError("eta_min_factor must be in (0, 1]")
        if not self.eta_max_factor >= 1.0:
            raise ValueError("eta_max_factor must be >= 1")


@dataclass
class IterationRecord:
    """One sampled point of the optimisation trajectory."""

    iteration: int
    cost: float  # A = Y + eps * D
    utility: float  # sum_j U_j(a_j)
    max_utilization: float
    admitted: np.ndarray


@dataclass
class GradientResult(RunResultMixin):
    """Outcome of a gradient run: final solution plus the full trajectory.

    Implements the :class:`~repro.core.result.RunResult` protocol; the
    trajectory accessors (``utilities``, ``costs``, ``recorded_iterations``,
    ``final_utility``) come from :class:`~repro.core.result.RunResultMixin`.
    """

    solution: Solution
    history: List[IterationRecord]
    converged: bool
    iterations: int


class GradientAlgorithm:
    """Synchronous engine for the distributed gradient algorithm.

    Example
    -------
    >>> from repro.core.gradient import GradientAlgorithm, GradientConfig
    >>> algo = GradientAlgorithm(ext, GradientConfig(eta=0.04))
    >>> result = algo.run()
    >>> result.solution.utility  # doctest: +SKIP
    """

    def __init__(
        self,
        ext: ExtendedNetwork,
        config: Optional[GradientConfig] = None,
        backend=None,
    ):
        self.ext = ext
        self.config = config or GradientConfig()
        if backend is None:
            # imported lazily: repro.parallel imports this module's kernels
            from repro.parallel.backend import SerialBackend

            backend = SerialBackend()
        self.backend = backend
        backend.bind(self.ext, self.config)

    def refresh(self, applied) -> None:
        """Advance the bound model one epoch.

        ``applied`` is a :class:`repro.core.delta.AppliedDelta`.  The
        execution backend republishes only what the delta dirtied -- in
        particular a :class:`repro.parallel.ParallelBackend` keeps its
        worker pool alive across the refresh.
        """
        self.ext = applied.ext
        self.backend.refresh(applied)

    # -- one application of Gamma ------------------------------------------------
    def compute_context(
        self, routing: RoutingState, instrumentation=None
    ) -> IterationContext:
        """Solve the flow balance once and cache everything the iteration needs."""
        return self.backend.build_context(routing, instrumentation=instrumentation)

    def step(
        self,
        routing: RoutingState,
        eta: Optional[float] = None,
        context: Optional[IterationContext] = None,
        instrumentation=None,
    ) -> RoutingState:
        """Apply the update map ``Gamma`` once and return the new routing.

        ``eta`` overrides the configured step scale for this application
        (used by the adaptive-step run loop).  ``context`` supplies the
        precomputed :class:`IterationContext` of ``routing``; without it one
        is built here (the run loop always passes the cached one, so each
        iteration solves the flow balance exactly once).
        ``instrumentation`` times the backend's phases; it is read-only and
        never changes an iterate.

        The actual work happens in the configured execution backend
        (:class:`repro.parallel.SerialBackend` by default, or a
        :class:`repro.parallel.ParallelBackend` sharding the per-commodity
        kernels across worker processes).  Every backend produces
        bit-identical iterates.
        """
        return self.backend.step(
            routing, eta=eta, context=context, instrumentation=instrumentation
        )

    def step_reference(
        self, routing: RoutingState, eta: Optional[float] = None
    ) -> RoutingState:
        """Pure-scalar application of ``Gamma`` (the seed implementation).

        Recomputes everything with the scalar flow solve, the scalar
        marginal wave, the scalar blocked sets, and the per-node kernel.
        Kept as the ground truth :meth:`step` is asserted bit-identical
        against in the tests and the iteration-core benchmark.
        """
        ext = self.ext
        cfg = self.config
        if eta is None:
            eta = cfg.eta
        new_phi = routing.phi.copy()

        traffic = solve_traffic_scalar(ext, routing)
        edge_usage, node_usage = resource_usage(ext, routing, traffic)
        dadf = link_cost_derivative(ext, cfg.cost_model, edge_usage, node_usage)

        for view in ext.commodities:
            j = view.index
            dadr = marginal_cost_to_destination_scalar(ext, j, routing, dadf)
            delta = edge_marginals(ext, j, dadf, dadr)
            if cfg.use_blocking:
                blocked = compute_blocked_sets_scalar(
                    ext, j, routing, traffic, dadr, delta, eta
                )
            else:
                blocked = None
            out_lists = ext.commodity_out_edges[j]
            for node in view.node_indices:
                if node == view.sink:
                    continue
                out = out_lists[node]
                if len(out) < 2:
                    continue  # a single out-edge always carries fraction 1
                apply_gamma_at_node(
                    new_phi[j],
                    traffic[j, node],
                    out,
                    delta,
                    blocked,
                    eta,
                    cfg.traffic_tol,
                )

        return RoutingState(new_phi)

    # -- full run ------------------------------------------------------------------
    def run(
        self,
        routing: Optional[RoutingState] = None,
        callback: Optional[Callable[[int, IterationRecord], None]] = None,
        instrumentation=None,
        validate=False,
    ) -> GradientResult:
        """Iterate ``Gamma`` from a feasible start until convergence.

        Starts from the paper's shed-everything routing (strictly feasible)
        unless ``routing`` is given.  Raises :class:`ConvergenceError` if the
        cost diverges (step scale ``eta`` too large).

        ``instrumentation`` (an :class:`repro.obs.Instrumentation`) collects
        per-phase wall-clock timings, per-iteration trajectory events at the
        ``record_every`` cadence, and run-level gauges.  It only *reads*
        already-computed values, so an instrumented run produces bit-identical
        iterates and performs no extra flow solves.

        ``validate`` (``True`` or ``"strict"``) runs the invariant audit on
        the finished result and attaches the
        :class:`~repro.validate.ValidationReport`; iterates are unaffected.
        """
        ext = self.ext
        cfg = self.config
        inst = instrumentation if instrumentation is not None else NULL_INSTRUMENTATION
        if routing is None:
            routing = initial_routing(ext)
        else:
            validate_routing(ext, routing)
            routing = routing.copy()

        # One IterationContext per routing state: the step, the convergence
        # check, and the trajectory record all read the same cache, so the
        # flow balance is solved exactly once per iteration.
        context = self.compute_context(routing, instrumentation=instrumentation)
        history: List[IterationRecord] = []
        record = self._record(0, context)
        history.append(record)
        self._observe(inst, record)
        if callback:
            callback(0, record)

        previous_cost = record.cost
        quiet = 0
        converged = False
        iterations_done = 0
        eta = cfg.eta
        eta_floor = cfg.eta * cfg.eta_min_factor
        eta_ceiling = cfg.eta * cfg.eta_max_factor

        # A backend with staleness=K may run up to K+1 iterations per
        # dispatch.  The span never crosses a record_every boundary, so the
        # recorded trajectory keeps its exact serial cadence; divergence,
        # adaptive-eta, and convergence checks then run once per dispatch
        # (per iteration in the default synchronous case, where span == 1
        # and this loop performs the identical calls in the identical
        # order as the historical per-iteration loop).
        batch = 1 + max(0, int(getattr(self.backend, "staleness", 0)))
        iteration = 0
        while iteration < cfg.max_iterations:
            span = min(batch, cfg.max_iterations - iteration)
            if span > 1:
                span = min(span, cfg.record_every - iteration % cfg.record_every)
            iteration += span
            with inst.phase("iteration", iteration=iteration, span=span):
                if span == 1:
                    routing = self.step(
                        routing, eta=eta, context=context,
                        instrumentation=instrumentation,
                    )
                    context = self.compute_context(
                        routing, instrumentation=instrumentation
                    )
                else:
                    routing, context = self.backend.advance(
                        routing, context, span, eta=eta,
                        instrumentation=instrumentation,
                    )
                iterations_done = iteration

            cost = context.cost
            if not np.isfinite(cost):
                raise ConvergenceError(
                    f"cost diverged at iteration {iteration}; "
                    f"reduce eta (currently {eta})"
                )
            if cfg.adaptive_eta:
                if cost > previous_cost * (1.0 + 1e-12):
                    eta = max(eta * cfg.eta_backoff, eta_floor)
                else:
                    eta = min(eta * cfg.eta_growth, eta_ceiling)
            if iteration % cfg.record_every == 0 or iteration == cfg.max_iterations:
                record = self._record(iteration, context)
                history.append(record)
                self._observe(inst, record)
                if callback:
                    callback(iteration, record)

            if abs(cost - previous_cost) <= cfg.tolerance * max(1.0, abs(cost)):
                quiet += 1
                if quiet >= cfg.patience:
                    converged = True
                    break
            else:
                quiet = 0
            previous_cost = cost

        if history[-1].iteration != iterations_done:
            record = self._record(iterations_done, context)
            history.append(record)
            self._observe(inst, record)

        solution = build_solution(
            ext,
            routing,
            cfg.cost_model,
            method="gradient",
            iterations=iterations_done,
            traffic=context.traffic,
        )
        if inst.enabled:
            inst.gauge("iterations_total", iterations_done)
            inst.gauge("converged", float(converged))
            inst.gauge("final_utility", solution.utility)
            inst.gauge("final_cost", solution.cost)
        result = GradientResult(
            solution=solution,
            history=history,
            converged=converged,
            iterations=iterations_done,
        )
        if validate:
            from repro.validate import attach_validation

            attach_validation(result, ext, mode=validate, instrumentation=inst)
        return result

    def optimality(
        self,
        routing: RoutingState,
        context: Optional[IterationContext] = None,
    ):
        """Theorem-2 residuals at ``routing`` (see :mod:`repro.core.marginals`).

        Pass the state's :class:`IterationContext` to reuse its cached
        traffic and derivatives instead of re-solving.
        """
        return optimality_residual(
            self.ext, routing, self.config.cost_model, context=context
        )

    @staticmethod
    def _observe(inst, record: IterationRecord) -> None:
        """Mirror a trajectory record into the instrumentation event log."""
        if not inst.enabled:
            return
        inst.iteration(
            record.iteration,
            cost=record.cost,
            utility=record.utility,
            max_utilization=record.max_utilization,
        )

    def _record(self, iteration: int, context: IterationContext) -> IterationRecord:
        breakdown = context.breakdown
        util = utilization_profile(context.node_usage, self.ext.capacity)
        max_util = float(util.max()) if util.size else 0.0
        return IterationRecord(
            iteration=iteration,
            cost=breakdown.total,
            utility=breakdown.utility,
            max_utilization=max_util,
            admitted=breakdown.admitted.copy(),
        )
