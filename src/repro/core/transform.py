"""Extended-graph transformation (paper Section 3, Figures 2 and 3).

Two transformations turn the original joint problem into a pure routing
problem on a new graph ``G' = (V, L)``:

**Bandwidth nodes** (Figure 2).  Every physical link ``(i, k)`` used by some
commodity becomes a *bandwidth node* ``n_ik`` with resource budget
``C_{n_ik} = B_ik`` plus two edges ``(i, n_ik)`` and ``(n_ik, k)``.  Moving one
unit of flow across the bandwidth node costs one unit of its resource and is
gain free (``c = 1``, ``beta = 1``); the processing edge ``(i, n_ik)``
inherits the original ``c_ik(j)`` and ``beta_ik(j)``.  After this step the
only resource constraints left are per *node*.

**Dummy nodes** (Figure 3).  Every commodity ``j`` gets a dummy super-source
``s̄_j`` of infinite capacity, a *dummy input link* ``(s̄_j, s_j)`` and a
*dummy difference link* ``(s̄_j, j)`` straight to the sink.  Traffic arrives
at ``s̄_j`` at the fixed offered rate ``lambda_j``; the fraction routed over
the input link is the admitted rate ``a_j``, the remainder ``lambda_j - a_j``
is shed over the difference link at utility-loss cost
``Y(x) = U_j(lambda_j) - U_j(lambda_j - x)`` (eq. (1)).  Admission control is
thereby *exactly* a routing decision at ``s̄_j``.

Bookkeeping check (paper, Section 3): a graph with ``N`` nodes, ``M`` edges
and ``J`` commodities yields ``N + M + J`` nodes and ``2M + 2J`` edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, List, Optional, Tuple

import networkx as nx
import numpy as np

from repro.core.commodity import StreamNetwork
from repro.core.network import NodeKind
from repro.core.utility import UtilityFunction
from repro.exceptions import TransformError

Edge = Tuple[str, str]

__all__ = [
    "ExtNodeKind",
    "ExtEdgeKind",
    "CommodityFlowPlan",
    "CommodityGammaPlan",
    "MergedWavePlan",
    "MergedEdgeList",
    "ExtendedNetwork",
    "ExtSkeleton",
    "build_extended_network",
]


class ExtNodeKind(Enum):
    PROCESSING = "processing"
    SINK = "sink"
    BANDWIDTH = "bandwidth"
    DUMMY_SOURCE = "dummy_source"


class ExtEdgeKind(Enum):
    PROCESSING = "processing"  # (i, n_ik): consumes compute at i
    TRANSFER = "transfer"  # (n_ik, k): consumes bandwidth at n_ik
    DUMMY_INPUT = "dummy_input"  # (s̄_j, s_j): admits traffic
    DUMMY_DIFFERENCE = "dummy_difference"  # (s̄_j, j): sheds traffic


@dataclass(frozen=True)
class ExtNode:
    """A node of the extended graph ``G'``."""

    index: int
    name: str
    kind: ExtNodeKind
    capacity: float
    # For BANDWIDTH nodes: the physical link it represents.
    physical_link: Optional[Edge] = None


@dataclass(frozen=True)
class ExtEdge:
    """An edge of the extended graph ``G'``."""

    index: int
    tail: int
    head: int
    kind: ExtEdgeKind
    # For PROCESSING/TRANSFER edges: the physical link they derive from.
    physical_link: Optional[Edge] = None
    # For DUMMY_* edges: the owning commodity index.
    commodity: Optional[int] = None


@dataclass
class CommodityView:
    """Per-commodity arrays and orderings over the extended graph."""

    index: int
    name: str
    source: int  # extended index of the physical source s_j
    sink: int  # extended index of the sink j
    dummy: int  # extended index of the dummy super-source s̄_j
    input_edge: int  # index of (s̄_j, s_j)
    difference_edge: int  # index of (s̄_j, j)
    max_rate: float  # lambda_j
    utility: UtilityFunction
    edge_indices: List[int] = field(default_factory=list)  # allowed edges, incl. dummy
    node_indices: List[int] = field(default_factory=list)  # touched nodes
    topo_order: List[int] = field(default_factory=list)  # nodes, sources first


@dataclass(frozen=True)
class CommodityFlowPlan:
    """Topo-level CSR structure of one commodity's allowed edges.

    The flat arrays list the commodity's edges in exactly the order the
    scalar flow solve visits them (nodes in topological order, each node's
    out-edges in its ``commodity_out_edges`` order).  ``offsets`` partitions
    that sequence into *blocks*: within a block no edge's tail is the head of
    an earlier edge of the same block, so a whole block can be evaluated from
    a single gather of tail traffic and scattered with one ordered
    ``np.add.at`` -- which accumulates element by element and therefore
    reproduces the scalar pass bit for bit.  Blocks never split a node's
    out-edge list.  Traversed forward this solves the flow balance (eq. (3));
    traversed backward it runs the marginal-cost wave (eq. (9)).
    """

    edges: np.ndarray  # (P,) edge ids, scalar iteration order
    tails: np.ndarray  # (P,) tail node per edge
    heads: np.ndarray  # (P,) head node per edge
    gains: np.ndarray  # (P,) gain[j, edge]
    costs: np.ndarray  # (P,) cost[j, edge]
    offsets: np.ndarray  # (B + 1,) block boundaries into the flat arrays
    # per block: are all heads distinct?  If so the scatter-add can use the
    # much faster fancy ``+=`` without changing any accumulation order.
    unique_heads: np.ndarray  # (B,) bool


@dataclass(frozen=True)
class CommodityGammaPlan:
    """Padded per-node out-edge matrix for the batched update map ``Gamma``.

    Covers exactly the nodes the synchronous engine updates: non-sink nodes
    of the commodity subgraph with at least two allowed out-edges (a single
    out-edge always carries fraction 1).  Row ``n`` of ``edge_matrix`` holds
    node ``nodes[n]``'s out-edge ids in ``commodity_out_edges`` order, padded
    with 0 where ``valid`` is False.

    The *merged* plan (:attr:`ExtendedNetwork.merged_gamma_plan`) reuses this
    structure with flattened cross-commodity ids (node ``j*V + v``, edge
    ``j*E + e``) so one kernel call covers every commodity at once.
    """

    nodes: np.ndarray  # (N,) node ids
    edge_matrix: np.ndarray  # (N, K) edge ids, 0-padded
    valid: np.ndarray  # (N, K) bool
    # derived, filled in __post_init__: row index vector and the flat edge ids
    # of the valid cells, cached because the Gamma kernel runs every iteration
    rows: np.ndarray = None  # (N,)
    targets: np.ndarray = None  # (sum(valid),) == edge_matrix[valid]

    def __post_init__(self):
        object.__setattr__(self, "rows", np.arange(self.nodes.size))
        object.__setattr__(self, "targets", self.edge_matrix[self.valid])


@dataclass(frozen=True)
class MergedWavePlan:
    """Cross-commodity level structure for one direction of the flow waves.

    Each *level* concatenates one topo block from every commodity (forward:
    block ``k``; reverse: block ``B_j - 1 - k``, so every commodity's own
    blocks still execute in order).  All indices are flattened across
    commodities -- node ``j*V + v``, edge ``j*E + e`` -- which keeps the
    commodities' index spaces disjoint: a single ordered ``np.add.at`` per
    level reproduces every commodity's scalar accumulation order exactly
    while amortizing the per-call NumPy overhead over all of them.
    """

    edges: np.ndarray  # (P,) flat commodity-edge ids (j*E + e)
    raw_edges: np.ndarray  # (P,) plain edge ids (for shared per-edge arrays)
    tails: np.ndarray  # (P,) flat node ids (j*V + v)
    heads: np.ndarray  # (P,) flat node ids
    gains: np.ndarray  # (P,) gain[j, edge]
    costs: np.ndarray  # (P,) cost[j, edge]
    offsets: np.ndarray  # (L + 1,) level boundaries
    unique_heads: np.ndarray  # (L,) all heads distinct within the level?
    # per-level views (edges, raw_edges, tails, heads, gains, costs,
    # unique_heads, unique_tails) pre-sliced once at build time -- the waves
    # run every iteration and the slice arithmetic alone is measurable at
    # this scale.  The two uniqueness flags let forward (scatter by head) and
    # reverse (scatter by tail) waves use fancy ``+=`` instead of ``ufunc.at``
    # wherever the level's scatter targets are distinct.
    levels: Tuple[
        Tuple[
            np.ndarray,
            np.ndarray,
            np.ndarray,
            np.ndarray,
            np.ndarray,
            np.ndarray,
            bool,
            bool,
        ],
        ...,
    ] = ()


@dataclass(frozen=True)
class MergedEdgeList:
    """All commodities' allowed edges, flat-indexed, in commodity order.

    ``g_tails`` / ``g_heads`` pre-gather the (static) node potentials at each
    edge's endpoints so the per-iteration improper-link test skips two fancy
    gathers.
    """

    edges: np.ndarray  # (P,) flat commodity-edge ids (j*E + e)
    raw_edges: np.ndarray  # (P,) plain edge ids
    tails: np.ndarray  # (P,) flat node ids (j*V + v)
    heads: np.ndarray  # (P,) flat node ids
    g_tails: np.ndarray = None  # (P,) node_potentials at tails
    g_heads: np.ndarray = None  # (P,) node_potentials at heads


class ExtendedNetwork:
    """The transformed routing problem: single per-node resource constraints.

    Attributes
    ----------
    nodes, edges:
        Lists of :class:`ExtNode` / :class:`ExtEdge` (index == position).
    capacity:
        ``(V,)`` float array of node budgets (``inf`` for sinks and dummies).
    cost, gain:
        ``(J, E)`` float arrays: ``cost[j, e] = c_e(j)``, ``gain[j, e] =
        beta_e(j)``; zero / one respectively on edges not allowed for ``j``.
    allowed:
        ``(J, E)`` bool array: may commodity ``j`` use edge ``e``?
    out_edges, in_edges:
        Per-node lists of edge indices.
    commodities:
        List of :class:`CommodityView`.
    """

    def __init__(
        self,
        nodes: List[ExtNode],
        edges: List[ExtEdge],
        commodities: List[CommodityView],
        cost: np.ndarray,
        gain: np.ndarray,
        allowed: np.ndarray,
        stream_network: StreamNetwork,
    ) -> None:
        self.nodes = nodes
        self.edges = edges
        self.commodities = commodities
        self.cost = cost
        self.gain = gain
        self.allowed = allowed
        self.stream_network = stream_network

        self.num_nodes = len(nodes)
        self.num_edges = len(edges)
        self.num_commodities = len(commodities)

        # model version number: 0 for a from-scratch build, bumped by one
        # for every event applied through the delta path (repro.core.delta).
        # Scalar deltas bump it in place; structural deltas produce a new
        # ExtendedNetwork carrying ``old.epoch + 1``.
        self.epoch = 0

        self.capacity = np.array([n.capacity for n in nodes], dtype=float)
        self.edge_tail = np.array([e.tail for e in edges], dtype=int)
        self.edge_head = np.array([e.head for e in edges], dtype=int)
        self.lam = np.array([c.max_rate for c in commodities], dtype=float)

        self.out_edges: List[List[int]] = [[] for _ in range(self.num_nodes)]
        self.in_edges: List[List[int]] = [[] for _ in range(self.num_nodes)]
        for e in edges:
            self.out_edges[e.tail].append(e.index)
            self.in_edges[e.head].append(e.index)

        self.name_to_index: Dict[str, int] = {n.name: n.index for n in nodes}

        # (E,) bool: is this edge the dummy difference link of some commodity?
        self.is_difference_edge = np.array(
            [e.kind is ExtEdgeKind.DUMMY_DIFFERENCE for e in edges], dtype=bool
        )
        # difference-edge index -> commodity index (or -1)
        self.difference_edge_commodity = np.full(self.num_edges, -1, dtype=int)
        for c in commodities:
            self.difference_edge_commodity[c.difference_edge] = c.index

        # per-commodity special indices as arrays (hot paths index with these
        # instead of looping over the commodity views)
        self.commodity_dummies = np.array(
            [c.dummy for c in commodities], dtype=np.intp
        )
        self.commodity_input_edges = np.array(
            [c.input_edge for c in commodities], dtype=np.intp
        )
        self.commodity_difference_edges = np.array(
            [c.difference_edge for c in commodities], dtype=np.intp
        )
        self.commodity_max_rates = np.array(
            [c.max_rate for c in commodities], dtype=float
        )

        # per-commodity out-edge lists restricted to the allowed subgraph
        self.commodity_out_edges: List[List[List[int]]] = []
        for c in commodities:
            per_node: List[List[int]] = [[] for _ in range(self.num_nodes)]
            for e_idx in c.edge_indices:
                per_node[edges[e_idx].tail].append(e_idx)
            self.commodity_out_edges.append(per_node)

        # node potentials g_i(j): cumulative gain from the dummy source to
        # node i (well defined by Property 1; the dummy difference link is a
        # shed shortcut priced in lambda-units and is exempt).  Used wherever
        # marginal costs must be compared in *source-equivalent* units.
        self.node_potentials = self._compute_node_potentials()

        # vectorization plans, built on first use (many consumers of the
        # extended network never run the iterative solvers)
        self._flow_plans: Optional[List[CommodityFlowPlan]] = None
        self._gamma_plans: Optional[List[CommodityGammaPlan]] = None
        self._commodity_edge_arrays: Optional[List[np.ndarray]] = None
        self._merged_forward_plan: Optional[MergedWavePlan] = None
        self._merged_reverse_plan: Optional[MergedWavePlan] = None
        self._merged_gamma_plan: Optional[CommodityGammaPlan] = None
        self._merged_edge_list: Optional[MergedEdgeList] = None

        # the canonical layout this network was built from; set by
        # build_extended_network and the delta splicer.  The splicer reads
        # it to translate old indices into the new layout through the
        # skeleton's own link/commodity tables instead of re-deriving a
        # per-edge key for every old edge (see repro.core.delta._splice).
        self._skeleton: Optional["ExtSkeleton"] = None

        # lazy caches filled in by the hot paths (routing / marginals /
        # blocking); declared here so the attributes are part of the type.
        # _linear_utility_weights uses False as its "not computed" sentinel
        # because the computed value may legitimately be None (non-linear).
        self._external_inputs_template: Optional[np.ndarray] = None
        self._commodity_rows: Optional[np.ndarray] = None
        self._utility_at_max: Optional[np.ndarray] = None
        self._linear_utility_weights: Any = False
        self._reverse_level_mel_pos: Optional[Tuple[np.ndarray, np.ndarray]] = None

    @property
    def flow_plans(self) -> List[CommodityFlowPlan]:
        """Per-commodity topo-level CSR plans for the vectorized flow passes."""
        if self._flow_plans is None:
            self._flow_plans = [self._build_flow_plan(c) for c in self.commodities]
        return self._flow_plans

    @property
    def gamma_plans(self) -> List[CommodityGammaPlan]:
        """Per-commodity padded out-edge matrices for the batched ``Gamma``."""
        if self._gamma_plans is None:
            self._gamma_plans = [self._build_gamma_plan(c) for c in self.commodities]
        return self._gamma_plans

    @property
    def commodity_edge_arrays(self) -> List[np.ndarray]:
        """``view.edge_indices`` of each commodity as an int array."""
        if self._commodity_edge_arrays is None:
            self._commodity_edge_arrays = [
                np.asarray(c.edge_indices, dtype=np.intp) for c in self.commodities
            ]
        return self._commodity_edge_arrays

    @property
    def merged_forward_plan(self) -> MergedWavePlan:
        """Cross-commodity levels for the forward flow solve (eq. (3))."""
        if self._merged_forward_plan is None:
            self._merged_forward_plan = self._build_merged_wave(reverse=False)
        return self._merged_forward_plan

    @property
    def merged_reverse_plan(self) -> MergedWavePlan:
        """Cross-commodity levels for the backward waves (eq. (9), tags)."""
        if self._merged_reverse_plan is None:
            self._merged_reverse_plan = self._build_merged_wave(reverse=True)
        return self._merged_reverse_plan

    @property
    def merged_gamma_plan(self) -> CommodityGammaPlan:
        """All commodities' ``Gamma`` rows in one flat-indexed plan."""
        if self._merged_gamma_plan is None:
            self._merged_gamma_plan = self._build_merged_gamma_plan()
        return self._merged_gamma_plan

    @property
    def merged_edge_list(self) -> MergedEdgeList:
        """All commodities' allowed edges with flattened cross-commodity ids."""
        if self._merged_edge_list is None:
            raw = [self.commodity_edge_arrays[j] for j in range(self.num_commodities)]
            raw_edges = (
                np.concatenate(raw) if raw else np.empty(0, dtype=np.intp)
            )
            flat = np.concatenate(
                [arr + j * self.num_edges for j, arr in enumerate(raw)]
            ) if raw else np.empty(0, dtype=np.intp)
            tails = np.concatenate(
                [
                    self.edge_tail[arr] + j * self.num_nodes
                    for j, arr in enumerate(raw)
                ]
            ) if raw else np.empty(0, dtype=np.intp)
            heads = np.concatenate(
                [
                    self.edge_head[arr] + j * self.num_nodes
                    for j, arr in enumerate(raw)
                ]
            ) if raw else np.empty(0, dtype=np.intp)
            g_flat = self.node_potentials.reshape(-1)
            self._merged_edge_list = MergedEdgeList(
                edges=flat,
                raw_edges=raw_edges,
                tails=tails,
                heads=heads,
                g_tails=g_flat[tails],
                g_heads=g_flat[heads],
            )
        return self._merged_edge_list

    def _build_merged_wave(self, reverse: bool) -> MergedWavePlan:
        plans = self.flow_plans
        E, V = self.num_edges, self.num_nodes
        num_levels = max(
            (len(p.offsets) - 1 for p in plans), default=0
        )
        edges: List[np.ndarray] = []
        raw_edges: List[np.ndarray] = []
        tails: List[np.ndarray] = []
        heads: List[np.ndarray] = []
        gains: List[np.ndarray] = []
        costs: List[np.ndarray] = []
        offsets: List[int] = [0]
        unique: List[bool] = []
        total = 0
        unique_tails: List[bool] = []
        for level in range(num_levels):
            first_part = len(heads)
            for j, plan in enumerate(plans):
                num_blocks = len(plan.offsets) - 1
                b = (num_blocks - 1 - level) if reverse else level
                if b < 0 or b >= num_blocks:
                    continue
                s, e = plan.offsets[b], plan.offsets[b + 1]
                edges.append(plan.edges[s:e] + j * E)
                raw_edges.append(plan.edges[s:e])
                tails.append(plan.tails[s:e] + j * V)
                heads.append(plan.heads[s:e] + j * V)
                gains.append(plan.gains[s:e])
                costs.append(plan.costs[s:e])
                total += e - s
            offsets.append(total)
            level_heads = (
                np.concatenate(heads[first_part:])
                if len(heads) > first_part
                else np.empty(0, dtype=np.intp)
            )
            level_tails = (
                np.concatenate(tails[first_part:])
                if len(tails) > first_part
                else np.empty(0, dtype=np.intp)
            )
            unique.append(int(np.unique(level_heads).size) == level_heads.size)
            unique_tails.append(int(np.unique(level_tails).size) == level_tails.size)

        def cat(parts, dtype):
            return (
                np.ascontiguousarray(np.concatenate(parts))
                if parts
                else np.empty(0, dtype=dtype)
            )

        plan = MergedWavePlan(
            edges=cat(edges, np.intp),
            raw_edges=cat(raw_edges, np.intp),
            tails=cat(tails, np.intp),
            heads=cat(heads, np.intp),
            gains=cat(gains, float),
            costs=cat(costs, float),
            offsets=np.asarray(offsets, dtype=np.intp),
            unique_heads=np.asarray(unique, dtype=bool),
        )
        levels = tuple(
            (
                plan.edges[s:e],
                plan.raw_edges[s:e],
                plan.tails[s:e],
                plan.heads[s:e],
                plan.gains[s:e],
                plan.costs[s:e],
                bool(plan.unique_heads[b]),
                unique_tails[b],
            )
            for b, (s, e) in enumerate(zip(plan.offsets[:-1], plan.offsets[1:]))
        )
        object.__setattr__(plan, "levels", levels)
        return plan

    def _build_merged_gamma_plan(self) -> CommodityGammaPlan:
        plans = self.gamma_plans
        E, V = self.num_edges, self.num_nodes
        rows = sum(p.nodes.size for p in plans)
        width = max((p.edge_matrix.shape[1] for p in plans if p.nodes.size), default=0)
        nodes = np.empty(rows, dtype=np.intp)
        edge_matrix = np.zeros((rows, width), dtype=np.intp)
        valid = np.zeros((rows, width), dtype=bool)
        at = 0
        for j, plan in enumerate(plans):
            n, k = plan.edge_matrix.shape
            if n == 0:
                continue
            nodes[at : at + n] = plan.nodes + j * V
            edge_matrix[at : at + n, :k] = np.where(
                plan.valid, plan.edge_matrix + j * E, 0
            )
            valid[at : at + n, :k] = plan.valid
            at += n
        return CommodityGammaPlan(nodes=nodes, edge_matrix=edge_matrix, valid=valid)

    def _build_flow_plan(self, view: "CommodityView") -> CommodityFlowPlan:
        j = view.index
        out_lists = self.commodity_out_edges[j]
        flat: List[int] = []
        offsets: List[int] = [0]
        block_heads: set = set()
        for node in view.topo_order:
            out = out_lists[node]
            if not out:
                continue
            if node in block_heads:
                # this node's traffic was updated inside the current block;
                # its out-edges must wait for the next gather
                offsets.append(len(flat))
                block_heads = set()
            flat.extend(out)
            block_heads.update(int(self.edge_head[e]) for e in out)
        offsets.append(len(flat))

        edges = np.asarray(flat, dtype=np.intp)
        tails = self.edge_tail[edges] if edges.size else np.empty(0, dtype=np.intp)
        heads = self.edge_head[edges] if edges.size else np.empty(0, dtype=np.intp)
        gains = self.gain[j, edges] if edges.size else np.empty(0, dtype=float)
        costs = self.cost[j, edges] if edges.size else np.empty(0, dtype=float)
        unique = np.array(
            [
                len(set(heads[s:e].tolist())) == e - s
                for s, e in zip(offsets[:-1], offsets[1:])
            ],
            dtype=bool,
        )
        return CommodityFlowPlan(
            edges=edges,
            tails=np.asarray(tails, dtype=np.intp),
            heads=np.asarray(heads, dtype=np.intp),
            gains=np.asarray(gains, dtype=float),
            costs=np.asarray(costs, dtype=float),
            offsets=np.asarray(offsets, dtype=np.intp),
            unique_heads=unique,
        )

    def _build_gamma_plan(self, view: "CommodityView") -> CommodityGammaPlan:
        j = view.index
        out_lists = self.commodity_out_edges[j]
        nodes = [
            node
            for node in view.node_indices
            if node != view.sink and len(out_lists[node]) >= 2
        ]
        if not nodes:
            return CommodityGammaPlan(
                nodes=np.empty(0, dtype=np.intp),
                edge_matrix=np.empty((0, 0), dtype=np.intp),
                valid=np.empty((0, 0), dtype=bool),
            )
        width = max(len(out_lists[node]) for node in nodes)
        edge_matrix = np.zeros((len(nodes), width), dtype=np.intp)
        valid = np.zeros((len(nodes), width), dtype=bool)
        for row, node in enumerate(nodes):
            out = out_lists[node]
            edge_matrix[row, : len(out)] = out
            valid[row, : len(out)] = True
        return CommodityGammaPlan(
            nodes=np.asarray(nodes, dtype=np.intp),
            edge_matrix=edge_matrix,
            valid=valid,
        )

    def _compute_node_potentials(self) -> np.ndarray:
        g = np.ones((self.num_commodities, self.num_nodes), dtype=float)
        for view in self.commodities:
            j = view.index
            for node in view.topo_order:
                for e in self.commodity_out_edges[j][node]:
                    if e == view.difference_edge:
                        continue
                    g[j, self.edge_head[e]] = g[j, node] * self.gain[j, e]
        return g

    # -- delta API (implemented in repro.core.delta; imported lazily to keep
    # the transform layer importable on its own) -----------------------------------
    def compile_delta(self, event: Any) -> "Any":
        """Compile a network event into a :class:`repro.core.delta.ProblemDelta`."""
        from repro.core.delta import compile_event

        return compile_event(self, event)

    def apply_delta(self, delta: Any) -> "Any":
        """Apply a compiled delta, advancing one epoch.

        Returns a :class:`repro.core.delta.AppliedDelta`; scalar deltas
        mutate this network in place, structural deltas return a spliced
        successor (this object stays valid at its old epoch).
        """
        from repro.core.delta import apply_delta

        return apply_delta(self, delta)

    # -- helpers -------------------------------------------------------------------
    def node_index(self, name: str) -> int:
        try:
            return self.name_to_index[name]
        except KeyError:
            raise TransformError(f"unknown extended node {name!r}") from None

    def commodity_view(self, name: str) -> CommodityView:
        for c in self.commodities:
            if c.name == name:
                return c
        raise TransformError(f"unknown commodity {name!r}")

    def to_networkx(self) -> "nx.DiGraph":
        graph = nx.DiGraph()
        for n in self.nodes:
            graph.add_node(n.index, name=n.name, kind=n.kind.value, capacity=n.capacity)
        for e in self.edges:
            graph.add_edge(e.tail, e.head, index=e.index, kind=e.kind.value)
        return graph

    def describe(self) -> str:
        """Human-readable summary, including the paper's size bookkeeping."""
        kinds: Dict[str, int] = {}
        for n in self.nodes:
            kinds[n.kind.value] = kinds.get(n.kind.value, 0) + 1
        lines = [
            f"ExtendedNetwork: {self.num_nodes} nodes, {self.num_edges} edges, "
            f"{self.num_commodities} commodities",
            f"  node kinds: {kinds}",
        ]
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"ExtendedNetwork(V={self.num_nodes}, L={self.num_edges}, "
            f"J={self.num_commodities})"
        )


@dataclass
class ExtSkeleton:
    """Steps 1-3 of the transformation: the canonical node/edge layout.

    The layout is a pure function of the stream network: physical nodes in
    insertion order, one bandwidth node per used link in first-use order,
    one dummy source per commodity in commodity order; edges are the two
    replacements of each used link followed by the two dummy links of each
    commodity.  Both :func:`build_extended_network` and the delta splicer
    (:mod:`repro.core.delta`) lay out their networks through this single
    code path, which is what makes an incrementally spliced network
    bit-identical to a from-scratch rebuild.  The views carry only the
    direct fields; ``edge_indices``/``node_indices``/``topo_order`` are
    filled later (:func:`_fill_commodity_row` or the delta remap).
    """

    nodes: List[ExtNode]
    edges: List[ExtEdge]
    views: List[CommodityView]
    used_links: List[Edge]
    processing_edge_of: Dict[Edge, int]
    transfer_edge_of: Dict[Edge, int]
    name_to_index: Dict[str, int]


def _build_skeleton(stream_network: StreamNetwork) -> ExtSkeleton:
    physical = stream_network.physical

    used_links: List[Edge] = []
    seen = set()
    for commodity in stream_network.commodities:
        for edge in commodity.edges:
            if edge not in seen:
                seen.add(edge)
                used_links.append(edge)
    if not used_links:
        raise TransformError("no commodity uses any physical link")

    nodes: List[ExtNode] = []
    edges: List[ExtEdge] = []

    def add_node(
        name: str,
        kind: ExtNodeKind,
        capacity: float,
        physical_link: Optional[Edge] = None,
    ) -> int:
        idx = len(nodes)
        nodes.append(ExtNode(idx, name, kind, capacity, physical_link))
        return idx

    def add_edge(
        tail: int,
        head: int,
        kind: ExtEdgeKind,
        physical_link: Optional[Edge] = None,
        commodity: Optional[int] = None,
    ) -> int:
        idx = len(edges)
        edges.append(ExtEdge(idx, tail, head, kind, physical_link, commodity))
        return idx

    # 1. physical nodes
    for node in physical.nodes.values():
        kind = ExtNodeKind.SINK if node.kind is NodeKind.SINK else ExtNodeKind.PROCESSING
        add_node(node.name, kind, node.capacity)
    name_to_index = {n.name: n.index for n in nodes}

    # 2. bandwidth nodes + the two edges replacing each used physical link
    processing_edge_of: Dict[Edge, int] = {}
    transfer_edge_of: Dict[Edge, int] = {}
    for (tail_name, head_name) in used_links:
        link = physical.link(tail_name, head_name)
        bw_idx = add_node(
            f"bw:{tail_name}->{head_name}",
            ExtNodeKind.BANDWIDTH,
            link.bandwidth,
            physical_link=(tail_name, head_name),
        )
        processing_edge_of[(tail_name, head_name)] = add_edge(
            name_to_index[tail_name],
            bw_idx,
            ExtEdgeKind.PROCESSING,
            physical_link=(tail_name, head_name),
        )
        transfer_edge_of[(tail_name, head_name)] = add_edge(
            bw_idx,
            name_to_index[head_name],
            ExtEdgeKind.TRANSFER,
            physical_link=(tail_name, head_name),
        )

    # 3. dummy nodes and links per commodity
    views: List[CommodityView] = []
    for j, commodity in enumerate(stream_network.commodities):
        dummy_idx = add_node(
            f"dummy:{commodity.name}", ExtNodeKind.DUMMY_SOURCE, float("inf")
        )
        source_idx = name_to_index[commodity.source]
        sink_idx = name_to_index[commodity.sink]
        input_edge = add_edge(dummy_idx, source_idx, ExtEdgeKind.DUMMY_INPUT, commodity=j)
        difference_edge = add_edge(
            dummy_idx, sink_idx, ExtEdgeKind.DUMMY_DIFFERENCE, commodity=j
        )
        views.append(
            CommodityView(
                index=j,
                name=commodity.name,
                source=source_idx,
                sink=sink_idx,
                dummy=dummy_idx,
                input_edge=input_edge,
                difference_edge=difference_edge,
                max_rate=commodity.max_rate,
                utility=commodity.utility,
            )
        )

    return ExtSkeleton(
        nodes=nodes,
        edges=edges,
        views=views,
        used_links=used_links,
        processing_edge_of=processing_edge_of,
        transfer_edge_of=transfer_edge_of,
        name_to_index=name_to_index,
    )


def _fill_commodity_row(
    j: int,
    commodity: Any,
    skeleton: ExtSkeleton,
    cost: np.ndarray,
    gain: np.ndarray,
    allowed: np.ndarray,
) -> None:
    """Fill row ``j`` of cost/gain/allowed and derive the view's graph fields.

    This is the per-commodity half of the transformation: the cost/gain
    tables, the sorted allowed edge set, the DAG check, and the topological
    order.  It is the expensive (networkx) part the delta path skips for
    untouched commodities.
    """
    view = skeleton.views[j]
    edges = skeleton.edges
    edge_indices: List[int] = []
    for (tail_name, head_name) in commodity.edges:
        pe = skeleton.processing_edge_of[(tail_name, head_name)]
        te = skeleton.transfer_edge_of[(tail_name, head_name)]
        cost[j, pe] = commodity.cost(tail_name, head_name)
        gain[j, pe] = commodity.gain(tail_name, head_name)
        allowed[j, pe] = True
        cost[j, te] = 1.0  # bandwidth node: one unit of bandwidth per unit flow
        gain[j, te] = 1.0
        allowed[j, te] = True
        edge_indices.extend((pe, te))
    for e in (view.input_edge, view.difference_edge):
        cost[j, e] = 1.0
        gain[j, e] = 1.0
        allowed[j, e] = True
        edge_indices.append(e)
    view.edge_indices = sorted(edge_indices)

    subgraph = nx.DiGraph()
    for e_idx in view.edge_indices:
        subgraph.add_edge(edges[e_idx].tail, edges[e_idx].head)
    if not nx.is_directed_acyclic_graph(subgraph):
        raise TransformError(
            f"commodity {commodity.name!r}: extended subgraph is not a DAG"
        )
    view.node_indices = sorted(subgraph.nodes())
    view.topo_order = list(nx.topological_sort(subgraph))


def _check_bookkeeping(
    extended: ExtendedNetwork, n_phys: int, m_used: int, j_count: int
) -> None:
    """The paper's size check: ``N + M + J`` nodes and ``2M + 2J`` edges."""
    if extended.num_nodes != n_phys + m_used + j_count:
        raise TransformError("extended node count violates the paper's bookkeeping")
    if extended.num_edges != 2 * m_used + 2 * j_count:
        raise TransformError("extended edge count violates the paper's bookkeeping")


def build_extended_network(
    stream_network: StreamNetwork, require_connected: bool = True
) -> ExtendedNetwork:
    """Apply both transformations of Section 3 to a :class:`StreamNetwork`.

    Only physical links actually used by some commodity (``E = union E_j``)
    receive bandwidth nodes; unused links cannot carry flow in any solution.
    ``require_connected=False`` permits post-failure topologies that have
    split into islands (see :mod:`repro.online`).
    """
    stream_network.validate(require_connected=require_connected)
    skeleton = _build_skeleton(stream_network)

    num_edges = len(skeleton.edges)
    num_commodities = len(skeleton.views)
    cost = np.zeros((num_commodities, num_edges), dtype=float)
    gain = np.ones((num_commodities, num_edges), dtype=float)
    allowed = np.zeros((num_commodities, num_edges), dtype=bool)

    for j, commodity in enumerate(stream_network.commodities):
        _fill_commodity_row(j, commodity, skeleton, cost, gain, allowed)

    extended = ExtendedNetwork(
        nodes=skeleton.nodes,
        edges=skeleton.edges,
        commodities=skeleton.views,
        cost=cost,
        gain=gain,
        allowed=allowed,
        stream_network=stream_network,
    )
    _check_bookkeeping(
        extended,
        stream_network.physical.num_nodes,
        len(skeleton.used_links),
        num_commodities,
    )
    extended._skeleton = skeleton
    return extended
