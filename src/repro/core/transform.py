"""Extended-graph transformation (paper Section 3, Figures 2 and 3).

Two transformations turn the original joint problem into a pure routing
problem on a new graph ``G' = (V, L)``:

**Bandwidth nodes** (Figure 2).  Every physical link ``(i, k)`` used by some
commodity becomes a *bandwidth node* ``n_ik`` with resource budget
``C_{n_ik} = B_ik`` plus two edges ``(i, n_ik)`` and ``(n_ik, k)``.  Moving one
unit of flow across the bandwidth node costs one unit of its resource and is
gain free (``c = 1``, ``beta = 1``); the processing edge ``(i, n_ik)``
inherits the original ``c_ik(j)`` and ``beta_ik(j)``.  After this step the
only resource constraints left are per *node*.

**Dummy nodes** (Figure 3).  Every commodity ``j`` gets a dummy super-source
``s̄_j`` of infinite capacity, a *dummy input link* ``(s̄_j, s_j)`` and a
*dummy difference link* ``(s̄_j, j)`` straight to the sink.  Traffic arrives
at ``s̄_j`` at the fixed offered rate ``lambda_j``; the fraction routed over
the input link is the admitted rate ``a_j``, the remainder ``lambda_j - a_j``
is shed over the difference link at utility-loss cost
``Y(x) = U_j(lambda_j) - U_j(lambda_j - x)`` (eq. (1)).  Admission control is
thereby *exactly* a routing decision at ``s̄_j``.

Bookkeeping check (paper, Section 3): a graph with ``N`` nodes, ``M`` edges
and ``J`` commodities yields ``N + M + J`` nodes and ``2M + 2J`` edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Tuple

import networkx as nx
import numpy as np

from repro.core.commodity import StreamNetwork
from repro.core.network import NodeKind
from repro.core.utility import UtilityFunction
from repro.exceptions import TransformError

Edge = Tuple[str, str]

__all__ = ["ExtNodeKind", "ExtEdgeKind", "ExtendedNetwork", "build_extended_network"]


class ExtNodeKind(Enum):
    PROCESSING = "processing"
    SINK = "sink"
    BANDWIDTH = "bandwidth"
    DUMMY_SOURCE = "dummy_source"


class ExtEdgeKind(Enum):
    PROCESSING = "processing"  # (i, n_ik): consumes compute at i
    TRANSFER = "transfer"  # (n_ik, k): consumes bandwidth at n_ik
    DUMMY_INPUT = "dummy_input"  # (s̄_j, s_j): admits traffic
    DUMMY_DIFFERENCE = "dummy_difference"  # (s̄_j, j): sheds traffic


@dataclass(frozen=True)
class ExtNode:
    """A node of the extended graph ``G'``."""

    index: int
    name: str
    kind: ExtNodeKind
    capacity: float
    # For BANDWIDTH nodes: the physical link it represents.
    physical_link: Optional[Edge] = None


@dataclass(frozen=True)
class ExtEdge:
    """An edge of the extended graph ``G'``."""

    index: int
    tail: int
    head: int
    kind: ExtEdgeKind
    # For PROCESSING/TRANSFER edges: the physical link they derive from.
    physical_link: Optional[Edge] = None
    # For DUMMY_* edges: the owning commodity index.
    commodity: Optional[int] = None


@dataclass
class CommodityView:
    """Per-commodity arrays and orderings over the extended graph."""

    index: int
    name: str
    source: int  # extended index of the physical source s_j
    sink: int  # extended index of the sink j
    dummy: int  # extended index of the dummy super-source s̄_j
    input_edge: int  # index of (s̄_j, s_j)
    difference_edge: int  # index of (s̄_j, j)
    max_rate: float  # lambda_j
    utility: UtilityFunction
    edge_indices: List[int] = field(default_factory=list)  # allowed edges, incl. dummy
    node_indices: List[int] = field(default_factory=list)  # touched nodes
    topo_order: List[int] = field(default_factory=list)  # nodes, sources first


class ExtendedNetwork:
    """The transformed routing problem: single per-node resource constraints.

    Attributes
    ----------
    nodes, edges:
        Lists of :class:`ExtNode` / :class:`ExtEdge` (index == position).
    capacity:
        ``(V,)`` float array of node budgets (``inf`` for sinks and dummies).
    cost, gain:
        ``(J, E)`` float arrays: ``cost[j, e] = c_e(j)``, ``gain[j, e] =
        beta_e(j)``; zero / one respectively on edges not allowed for ``j``.
    allowed:
        ``(J, E)`` bool array: may commodity ``j`` use edge ``e``?
    out_edges, in_edges:
        Per-node lists of edge indices.
    commodities:
        List of :class:`CommodityView`.
    """

    def __init__(
        self,
        nodes: List[ExtNode],
        edges: List[ExtEdge],
        commodities: List[CommodityView],
        cost: np.ndarray,
        gain: np.ndarray,
        allowed: np.ndarray,
        stream_network: StreamNetwork,
    ) -> None:
        self.nodes = nodes
        self.edges = edges
        self.commodities = commodities
        self.cost = cost
        self.gain = gain
        self.allowed = allowed
        self.stream_network = stream_network

        self.num_nodes = len(nodes)
        self.num_edges = len(edges)
        self.num_commodities = len(commodities)

        self.capacity = np.array([n.capacity for n in nodes], dtype=float)
        self.edge_tail = np.array([e.tail for e in edges], dtype=int)
        self.edge_head = np.array([e.head for e in edges], dtype=int)
        self.lam = np.array([c.max_rate for c in commodities], dtype=float)

        self.out_edges: List[List[int]] = [[] for _ in range(self.num_nodes)]
        self.in_edges: List[List[int]] = [[] for _ in range(self.num_nodes)]
        for e in edges:
            self.out_edges[e.tail].append(e.index)
            self.in_edges[e.head].append(e.index)

        self.name_to_index: Dict[str, int] = {n.name: n.index for n in nodes}

        # (E,) bool: is this edge the dummy difference link of some commodity?
        self.is_difference_edge = np.array(
            [e.kind is ExtEdgeKind.DUMMY_DIFFERENCE for e in edges], dtype=bool
        )
        # difference-edge index -> commodity index (or -1)
        self.difference_edge_commodity = np.full(self.num_edges, -1, dtype=int)
        for c in commodities:
            self.difference_edge_commodity[c.difference_edge] = c.index

        # per-commodity out-edge lists restricted to the allowed subgraph
        self.commodity_out_edges: List[List[List[int]]] = []
        for c in commodities:
            per_node: List[List[int]] = [[] for _ in range(self.num_nodes)]
            for e_idx in c.edge_indices:
                per_node[edges[e_idx].tail].append(e_idx)
            self.commodity_out_edges.append(per_node)

        # node potentials g_i(j): cumulative gain from the dummy source to
        # node i (well defined by Property 1; the dummy difference link is a
        # shed shortcut priced in lambda-units and is exempt).  Used wherever
        # marginal costs must be compared in *source-equivalent* units.
        self.node_potentials = self._compute_node_potentials()

    def _compute_node_potentials(self) -> np.ndarray:
        g = np.ones((self.num_commodities, self.num_nodes), dtype=float)
        for view in self.commodities:
            j = view.index
            for node in view.topo_order:
                for e in self.commodity_out_edges[j][node]:
                    if e == view.difference_edge:
                        continue
                    g[j, self.edge_head[e]] = g[j, node] * self.gain[j, e]
        return g

    # -- helpers -------------------------------------------------------------------
    def node_index(self, name: str) -> int:
        try:
            return self.name_to_index[name]
        except KeyError:
            raise TransformError(f"unknown extended node {name!r}") from None

    def commodity_view(self, name: str) -> CommodityView:
        for c in self.commodities:
            if c.name == name:
                return c
        raise TransformError(f"unknown commodity {name!r}")

    def to_networkx(self) -> "nx.DiGraph":
        graph = nx.DiGraph()
        for n in self.nodes:
            graph.add_node(n.index, name=n.name, kind=n.kind.value, capacity=n.capacity)
        for e in self.edges:
            graph.add_edge(e.tail, e.head, index=e.index, kind=e.kind.value)
        return graph

    def describe(self) -> str:
        """Human-readable summary, including the paper's size bookkeeping."""
        kinds: Dict[str, int] = {}
        for n in self.nodes:
            kinds[n.kind.value] = kinds.get(n.kind.value, 0) + 1
        lines = [
            f"ExtendedNetwork: {self.num_nodes} nodes, {self.num_edges} edges, "
            f"{self.num_commodities} commodities",
            f"  node kinds: {kinds}",
        ]
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"ExtendedNetwork(V={self.num_nodes}, L={self.num_edges}, "
            f"J={self.num_commodities})"
        )


def build_extended_network(
    stream_network: StreamNetwork, require_connected: bool = True
) -> ExtendedNetwork:
    """Apply both transformations of Section 3 to a :class:`StreamNetwork`.

    Only physical links actually used by some commodity (``E = union E_j``)
    receive bandwidth nodes; unused links cannot carry flow in any solution.
    ``require_connected=False`` permits post-failure topologies that have
    split into islands (see :mod:`repro.online`).
    """
    stream_network.validate(require_connected=require_connected)
    physical = stream_network.physical

    used_links: List[Edge] = []
    seen = set()
    for commodity in stream_network.commodities:
        for edge in commodity.edges:
            if edge not in seen:
                seen.add(edge)
                used_links.append(edge)
    if not used_links:
        raise TransformError("no commodity uses any physical link")

    nodes: List[ExtNode] = []
    edges: List[ExtEdge] = []

    def add_node(
        name: str,
        kind: ExtNodeKind,
        capacity: float,
        physical_link: Optional[Edge] = None,
    ) -> int:
        idx = len(nodes)
        nodes.append(ExtNode(idx, name, kind, capacity, physical_link))
        return idx

    def add_edge(
        tail: int,
        head: int,
        kind: ExtEdgeKind,
        physical_link: Optional[Edge] = None,
        commodity: Optional[int] = None,
    ) -> int:
        idx = len(edges)
        edges.append(ExtEdge(idx, tail, head, kind, physical_link, commodity))
        return idx

    # 1. physical nodes
    for node in physical.nodes.values():
        kind = ExtNodeKind.SINK if node.kind is NodeKind.SINK else ExtNodeKind.PROCESSING
        add_node(node.name, kind, node.capacity)
    name_to_index = {n.name: n.index for n in nodes}

    # 2. bandwidth nodes + the two edges replacing each used physical link
    processing_edge_of: Dict[Edge, int] = {}
    transfer_edge_of: Dict[Edge, int] = {}
    for (tail_name, head_name) in used_links:
        link = physical.link(tail_name, head_name)
        bw_idx = add_node(
            f"bw:{tail_name}->{head_name}",
            ExtNodeKind.BANDWIDTH,
            link.bandwidth,
            physical_link=(tail_name, head_name),
        )
        processing_edge_of[(tail_name, head_name)] = add_edge(
            name_to_index[tail_name],
            bw_idx,
            ExtEdgeKind.PROCESSING,
            physical_link=(tail_name, head_name),
        )
        transfer_edge_of[(tail_name, head_name)] = add_edge(
            bw_idx,
            name_to_index[head_name],
            ExtEdgeKind.TRANSFER,
            physical_link=(tail_name, head_name),
        )

    # 3. dummy nodes and links per commodity
    views: List[CommodityView] = []
    for j, commodity in enumerate(stream_network.commodities):
        dummy_idx = add_node(
            f"dummy:{commodity.name}", ExtNodeKind.DUMMY_SOURCE, float("inf")
        )
        source_idx = name_to_index[commodity.source]
        sink_idx = name_to_index[commodity.sink]
        input_edge = add_edge(dummy_idx, source_idx, ExtEdgeKind.DUMMY_INPUT, commodity=j)
        difference_edge = add_edge(
            dummy_idx, sink_idx, ExtEdgeKind.DUMMY_DIFFERENCE, commodity=j
        )
        views.append(
            CommodityView(
                index=j,
                name=commodity.name,
                source=source_idx,
                sink=sink_idx,
                dummy=dummy_idx,
                input_edge=input_edge,
                difference_edge=difference_edge,
                max_rate=commodity.max_rate,
                utility=commodity.utility,
            )
        )

    num_nodes, num_edges = len(nodes), len(edges)
    num_commodities = len(views)
    cost = np.zeros((num_commodities, num_edges), dtype=float)
    gain = np.ones((num_commodities, num_edges), dtype=float)
    allowed = np.zeros((num_commodities, num_edges), dtype=bool)

    for j, commodity in enumerate(stream_network.commodities):
        view = views[j]
        edge_indices: List[int] = []
        for (tail_name, head_name) in commodity.edges:
            pe = processing_edge_of[(tail_name, head_name)]
            te = transfer_edge_of[(tail_name, head_name)]
            cost[j, pe] = commodity.cost(tail_name, head_name)
            gain[j, pe] = commodity.gain(tail_name, head_name)
            allowed[j, pe] = True
            cost[j, te] = 1.0  # bandwidth node: one unit of bandwidth per unit flow
            gain[j, te] = 1.0
            allowed[j, te] = True
            edge_indices.extend((pe, te))
        for e in (view.input_edge, view.difference_edge):
            cost[j, e] = 1.0
            gain[j, e] = 1.0
            allowed[j, e] = True
            edge_indices.append(e)
        view.edge_indices = sorted(edge_indices)

        subgraph = nx.DiGraph()
        for e_idx in view.edge_indices:
            subgraph.add_edge(edges[e_idx].tail, edges[e_idx].head)
        if not nx.is_directed_acyclic_graph(subgraph):
            raise TransformError(
                f"commodity {commodity.name!r}: extended subgraph is not a DAG"
            )
        view.node_indices = sorted(subgraph.nodes())
        view.topo_order = list(nx.topological_sort(subgraph))

    extended = ExtendedNetwork(
        nodes=nodes,
        edges=edges,
        commodities=views,
        cost=cost,
        gain=gain,
        allowed=allowed,
        stream_network=stream_network,
    )

    # paper's bookkeeping: N + M + J nodes, 2M + 2J edges, where M counts the
    # *used* physical links.
    n_phys, m_used, j_count = (
        physical.num_nodes,
        len(used_links),
        num_commodities,
    )
    if extended.num_nodes != n_phys + m_used + j_count:
        raise TransformError("extended node count violates the paper's bookkeeping")
    if extended.num_edges != 2 * m_used + 2 * j_count:
        raise TransformError("extended edge count violates the paper's bookkeeping")
    return extended
