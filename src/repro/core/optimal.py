"""Centralized optimal solvers -- the "optimization solver" line of Figure 4.

The utility optimisation of Section 3 is, in arc-flow variables, a concave
maximisation over a polytope.  For each commodity ``j`` and each allowed
extended edge ``e`` let ``y[j, e]`` be the commodity flow *entering* ``e``
(in tail-node units, pre-processing).  Then:

* gain-aware conservation (eq. (7)) at every non-sink node ``i`` of ``G_j``:
  ``sum_{e out of i} y[j,e] - sum_{e into i} beta_e(j) y[j,e] = r_i(j)``,
  with ``r_i(j) = lambda_j`` at the dummy source;
* node capacity (eq. (6)): ``sum_j sum_{e out of i} c_e(j) y[j,e] <= C_i``;
* ``y >= 0``; the admitted rate is ``a_j = y[j, input edge of j]``;
* objective ``max sum_j U_j(a_j)``.

For linear utilities (the paper's Figure-4 throughput objective) this is an
LP solved exactly with ``scipy.optimize.linprog`` (HiGHS).  For general
concave utilities we run the in-house Frank-Wolfe solver
(:mod:`repro.solver.frankwolfe`), whose duality gap certifies optimality, and
cross-check against ``scipy.optimize.minimize(SLSQP)`` in the test suite.

The solvers here ignore the barrier penalty: they compute the *true* optimum
of the original problem, which upper-bounds what the penalised distributed
algorithm can reach (it converges to within a few percent for the paper's
``eps = 0.2``; see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy.optimize import linprog

from repro.core.routing import RoutingState, initial_routing
from repro.core.solution import Solution
from repro.core.transform import ExtendedNetwork
from repro.core.utility import LinearUtility
from repro.exceptions import SolverError
from repro.solver.frankwolfe import Polytope, frank_wolfe

__all__ = [
    "ArcFlowProblem",
    "build_arc_flow_problem",
    "solve_lp",
    "solve_concave",
    "solve_optimal",
    "arc_flows_to_routing",
]


@dataclass
class ArcFlowProblem:
    """The arc-flow polytope of the utility optimisation.

    ``columns[(j, e)]`` maps commodity/edge pairs to variable columns;
    ``admitted_columns[j]`` is the column of commodity ``j``'s dummy input
    edge, whose value is the admitted rate ``a_j``.
    """

    ext: ExtendedNetwork
    columns: Dict[Tuple[int, int], int]
    admitted_columns: np.ndarray
    a_eq: np.ndarray
    b_eq: np.ndarray
    a_ub: np.ndarray
    b_ub: np.ndarray

    @property
    def num_vars(self) -> int:
        return len(self.columns)

    def polytope(self) -> Polytope:
        return Polytope(
            a_eq=self.a_eq, b_eq=self.b_eq, a_ub=self.a_ub, b_ub=self.b_ub
        )

    def flows_by_edge(self, y: np.ndarray) -> np.ndarray:
        """Expand a variable vector into a dense ``(J, E)`` flow array."""
        flows = np.zeros((self.ext.num_commodities, self.ext.num_edges))
        for (j, e), col in self.columns.items():
            flows[j, e] = y[col]
        return flows


def build_arc_flow_problem(
    ext: ExtendedNetwork, capacity_scale: float = 1.0
) -> ArcFlowProblem:
    """Assemble conservation and capacity matrices over the extended graph.

    ``capacity_scale`` (in ``(0, 1]``) shrinks every finite node budget; used
    to compare against barrier solutions that keep headroom.
    """
    if not 0.0 < capacity_scale <= 1.0:
        raise SolverError(f"capacity_scale must be in (0, 1], got {capacity_scale}")

    columns: Dict[Tuple[int, int], int] = {}
    for view in ext.commodities:
        for e in view.edge_indices:
            columns[(view.index, e)] = len(columns)
    num_vars = len(columns)

    eq_rows: List[np.ndarray] = []
    eq_rhs: List[float] = []
    for view in ext.commodities:
        j = view.index
        for node in view.node_indices:
            if node == view.sink:
                continue
            row = np.zeros(num_vars)
            for e in ext.commodity_out_edges[j][node]:
                row[columns[(j, e)]] += 1.0
            for e in ext.in_edges[node]:
                if (j, e) in columns:
                    row[columns[(j, e)]] -= ext.gain[j, e]
            eq_rows.append(row)
            eq_rhs.append(view.max_rate if node == view.dummy else 0.0)

    ub_rows: List[np.ndarray] = []
    ub_rhs: List[float] = []
    for node_idx in range(ext.num_nodes):
        capacity = ext.capacity[node_idx]
        if not np.isfinite(capacity):
            continue
        row = np.zeros(num_vars)
        nonzero = False
        for e in ext.out_edges[node_idx]:
            for view in ext.commodities:
                key = (view.index, e)
                if key in columns:
                    row[columns[key]] += ext.cost[view.index, e]
                    nonzero = True
        if nonzero:
            ub_rows.append(row)
            ub_rhs.append(capacity * capacity_scale)

    admitted_columns = np.array(
        [columns[(view.index, view.input_edge)] for view in ext.commodities],
        dtype=int,
    )
    return ArcFlowProblem(
        ext=ext,
        columns=columns,
        admitted_columns=admitted_columns,
        a_eq=np.vstack(eq_rows),
        b_eq=np.array(eq_rhs),
        a_ub=np.vstack(ub_rows) if ub_rows else np.zeros((0, num_vars)),
        b_ub=np.array(ub_rhs),
    )


def _solution_from_flows(
    ext: ExtendedNetwork,
    problem: ArcFlowProblem,
    y: np.ndarray,
    method: str,
    iterations: Optional[int] = None,
) -> Solution:
    admitted = y[problem.admitted_columns].copy()
    admitted = np.minimum(admitted, ext.lam)
    utility = float(
        sum(
            view.utility.value(float(admitted[view.index]))
            for view in ext.commodities
        )
    )
    flows = problem.flows_by_edge(y)
    node_usage = np.zeros(ext.num_nodes)
    edge_usage = np.einsum("je,je->e", flows, ext.cost)
    np.add.at(node_usage, ext.edge_tail, edge_usage)
    return Solution(
        ext=ext,
        admitted=admitted,
        utility=utility,
        cost=float("nan"),
        method=method,
        routing=None,
        iterations=iterations,
        extras={"arc_flows": flows, "node_usage": node_usage, "edge_usage": edge_usage},
    )


def solve_lp(ext: ExtendedNetwork, capacity_scale: float = 1.0) -> Solution:
    """Exact optimum for *linear* utilities via HiGHS.

    Raises :class:`SolverError` if any commodity's utility is not linear --
    use :func:`solve_concave` (or the :func:`solve_optimal` dispatcher) then.
    """
    weights = []
    for view in ext.commodities:
        if not isinstance(view.utility, LinearUtility):
            raise SolverError(
                f"commodity {view.name!r} has non-linear utility "
                f"{view.utility!r}; use solve_concave"
            )
        weights.append(view.utility.weight)

    problem = build_arc_flow_problem(ext, capacity_scale)
    objective = np.zeros(problem.num_vars)
    for view, weight in zip(ext.commodities, weights):
        objective[problem.admitted_columns[view.index]] = -weight  # linprog minimises

    result = linprog(
        c=objective,
        A_eq=problem.a_eq,
        b_eq=problem.b_eq,
        A_ub=problem.a_ub,
        b_ub=problem.b_ub,
        bounds=(0, None),
        method="highs",
    )
    if not result.success:
        raise SolverError(f"LP solve failed: {result.message}")
    return _solution_from_flows(ext, problem, np.asarray(result.x), method="lp")


def solve_concave(
    ext: ExtendedNetwork,
    capacity_scale: float = 1.0,
    max_iterations: int = 800,
    gap_tolerance: float = 1e-7,
) -> Solution:
    """Optimum for general concave utilities via in-house Frank-Wolfe."""
    problem = build_arc_flow_problem(ext, capacity_scale)
    cols = problem.admitted_columns

    def value(y: np.ndarray) -> float:
        return float(
            sum(
                view.utility.value(float(max(y[cols[view.index]], 0.0)))
                for view in ext.commodities
            )
        )

    def gradient(y: np.ndarray) -> np.ndarray:
        grad = np.zeros_like(y)
        for view in ext.commodities:
            a = float(max(y[cols[view.index]], 0.0))
            grad[cols[view.index]] = float(view.utility.derivative(a))
        return grad

    fw = frank_wolfe(
        value,
        gradient,
        problem.polytope(),
        max_iterations=max_iterations,
        gap_tolerance=gap_tolerance,
    )
    if not fw.converged and fw.gap_history and fw.gap_history[-1] > 1e-3 * max(
        1.0, abs(fw.value)
    ):
        raise SolverError(
            f"Frank-Wolfe did not converge: last gap {fw.gap_history[-1]:.3g}"
        )
    return _solution_from_flows(
        ext, problem, fw.x, method="frank-wolfe", iterations=fw.iterations
    )


def solve_optimal(ext: ExtendedNetwork, capacity_scale: float = 1.0) -> Solution:
    """Dispatch: exact LP when all utilities are linear, Frank-Wolfe otherwise."""
    if all(isinstance(v.utility, LinearUtility) for v in ext.commodities):
        return solve_lp(ext, capacity_scale)
    return solve_concave(ext, capacity_scale)


def arc_flows_to_routing(
    ext: ExtendedNetwork, flows: np.ndarray, flow_tol: float = 1e-9
) -> RoutingState:
    """Convert ``(J, E)`` arc flows into routing fractions ``phi``.

    At nodes carrying flow, ``phi`` splits proportionally to the outgoing arc
    flows; idle nodes inherit the shed-everything default so the result is
    always a valid routing decision.  Useful for warm-starting the gradient
    algorithm at (or near) the centralized optimum and for checking Theorem 2
    there.
    """
    routing = initial_routing(ext)
    phi = routing.phi
    for view in ext.commodities:
        j = view.index
        for node in view.node_indices:
            if node == view.sink:
                continue
            out = ext.commodity_out_edges[j][node]
            if not out:
                continue
            total = float(sum(flows[j, e] for e in out))
            if total > flow_tol:
                for e in out:
                    phi[j, e] = max(float(flows[j, e]), 0.0) / total
                phi[j, out] /= phi[j, out].sum()
    return routing
