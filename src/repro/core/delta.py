"""Delta compilation: incremental, epoch-versioned model updates.

The paper's algorithm is explicitly built to "adapt to changes" in demand
and capacity (Section V); what changes between two consecutive problem
instances is almost always tiny compared to the instance itself.  This
module turns a :class:`~repro.online.events.NetworkEvent` into a
:class:`ProblemDelta` -- a compiled patch against a concrete epoch of an
:class:`~repro.core.transform.ExtendedNetwork` -- and applies it without
recompiling the world:

* **Scalar deltas** (``DemandChange``, ``CapacityChange``) touch only
  capacity/rate arrays.  They are applied *in place*: the extended network
  keeps its identity, every vectorization plan survives untouched, and the
  epoch counter bumps by one.
* **Structural deltas** (``LinkFailure``, ``NodeFailure``,
  ``CommodityArrival``, ``CommodityDeparture``) change the node/edge
  layout.  They produce a *new* ``ExtendedNetwork`` whose layout is built
  through the exact skeleton code path of
  :func:`~repro.core.transform.build_extended_network` -- so the result is
  bit-identical to a from-scratch rebuild -- but only the *dirty*
  commodities (those the event actually touched, detected by object
  identity on the shared :class:`~repro.core.commodity.Commodity` objects)
  pay for re-derivation.  Untouched commodities' cost/gain/allowed rows,
  topological orders, and :class:`CommodityFlowPlan`/
  :class:`CommodityGammaPlan` structures are *remapped* onto the new index
  space with vectorized gathers; the merged cross-commodity plans then
  splice themselves from the per-commodity plans.

Index stability is what makes the remap sound: extended nodes are keyed by
name and extended edges by ``(kind, physical link)`` or ``(kind, commodity
name)``, and events only delete from or append to the layout, so the
surviving indices stay in relative order.  When an event *does* permute
the order (a dirty commodity was the first user of a link), the affected
commodity falls back to full re-derivation -- correctness never depends on
the fast path.

:func:`carry_routing` moves a :class:`~repro.core.routing.RoutingState`
across a delta at the array level: fully surviving commodities copy their
rows verbatim, partially surviving ones renormalise per node, and nodes
with no surviving mass keep the shed-everything default -- the result is
always a valid routing decision on the new epoch.

Verification: ``repro.validate.DifferentialOracle.compare_rebuild`` replays
an event sequence through both this module and from-scratch rebuilds and
asserts bit-identity at every step (see docs/online.md).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.commodity import StreamNetwork
from repro.core.routing import RoutingState, initial_routing
from repro.core.transform import (
    CommodityFlowPlan,
    CommodityGammaPlan,
    ExtEdge,
    ExtEdgeKind,
    ExtNode,
    ExtSkeleton,
    ExtendedNetwork,
    _build_skeleton,
    _check_bookkeeping,
    _fill_commodity_row,
)
from repro.exceptions import ModelError

__all__ = [
    "ScalarPatch",
    "ProblemDelta",
    "IndexMaps",
    "AppliedDelta",
    "compile_event",
    "apply_delta",
    "apply_scalar_patch",
    "build_index_maps",
    "carry_routing",
    "diff_extended_networks",
]


@dataclass(frozen=True)
class ScalarPatch:
    """In-place array updates for events that keep the layout intact.

    Both entries are absolute values (not increments), so applying a patch
    twice is idempotent.
    """

    # (extended node index, new capacity)
    node_capacity: Tuple[Tuple[int, float], ...] = ()
    # (commodity index, new offered rate lambda_j)
    commodity_rate: Tuple[Tuple[int, float], ...] = ()


@dataclass(frozen=True)
class IndexMaps:
    """Old-index -> new-index translation tables across one delta.

    Entries are ``-1`` where the old element did not survive.  ``identity``
    is True when nothing moved (same sizes, every element maps to itself),
    which lets consumers skip the remap entirely.
    """

    node_map: np.ndarray  # (V_old,) -> new node index or -1
    edge_map: np.ndarray  # (E_old,) -> new edge index or -1
    commodity_map: np.ndarray  # (J_old,) -> new commodity index or -1
    identity: bool


@dataclass(frozen=True)
class ProblemDelta:
    """A compiled event: everything needed to advance one epoch.

    Compiled against a specific ``base_epoch``; applying it to any other
    epoch raises (the patch's indices would be meaningless).
    """

    base_epoch: int
    event: Any  # the NetworkEvent this delta compiles
    network: StreamNetwork  # the post-event stream network
    dropped_commodities: Tuple[str, ...]
    dirty_commodities: Tuple[str, ...]  # names needing re-derivation
    scalar: Optional[ScalarPatch] = None  # set iff the layout is unchanged

    @property
    def structural(self) -> bool:
        return self.scalar is None


@dataclass(frozen=True)
class AppliedDelta:
    """Result of :func:`apply_delta`: the new epoch plus translation maps."""

    ext: ExtendedNetwork
    delta: ProblemDelta
    maps: IndexMaps
    structural: bool

    @property
    def dropped_commodities(self) -> Tuple[str, ...]:
        return self.delta.dropped_commodities


def _identity_maps(ext: ExtendedNetwork) -> IndexMaps:
    return IndexMaps(
        node_map=np.arange(ext.num_nodes, dtype=np.intp),
        edge_map=np.arange(ext.num_edges, dtype=np.intp),
        commodity_map=np.arange(ext.num_commodities, dtype=np.intp),
        identity=True,
    )


def _edge_key(edge: ExtEdge, views: List[Any]) -> Tuple[str, Any]:
    if edge.kind in (ExtEdgeKind.PROCESSING, ExtEdgeKind.TRANSFER):
        return (edge.kind.value, edge.physical_link)
    return (edge.kind.value, views[edge.commodity].name)


def _key_tables(
    nodes: List[ExtNode], edges: List[ExtEdge], views: List[Any]
) -> Tuple[Dict[str, int], Dict[Tuple[str, Any], int]]:
    node_pos = {n.name: n.index for n in nodes}
    edge_pos = {_edge_key(e, views): e.index for e in edges}
    return node_pos, edge_pos


def build_index_maps(old: ExtendedNetwork, new: ExtendedNetwork) -> IndexMaps:
    """Translate ``old`` indices into ``new`` via the stable element keys.

    Nodes are keyed by name; processing/transfer edges by their physical
    link, dummy edges by their owning commodity's name.  Works between any
    two extended networks over related stream networks -- in particular
    between consecutive epochs, however they were built.
    """
    new_node_pos, new_edge_pos = _key_tables(new.nodes, new.edges, new.commodities)
    node_map = np.fromiter(
        (new_node_pos.get(n.name, -1) for n in old.nodes),
        dtype=np.intp,
        count=old.num_nodes,
    )
    edge_map = np.fromiter(
        (new_edge_pos.get(_edge_key(e, old.commodities), -1) for e in old.edges),
        dtype=np.intp,
        count=old.num_edges,
    )
    new_commodity_pos = {c.name: c.index for c in new.commodities}
    commodity_map = np.fromiter(
        (new_commodity_pos.get(c.name, -1) for c in old.commodities),
        dtype=np.intp,
        count=old.num_commodities,
    )
    identity = (
        old.num_nodes == new.num_nodes
        and old.num_edges == new.num_edges
        and old.num_commodities == new.num_commodities
        and bool(np.all(node_map == np.arange(old.num_nodes)))
        and bool(np.all(edge_map == np.arange(old.num_edges)))
        and bool(np.all(commodity_map == np.arange(old.num_commodities)))
    )
    return IndexMaps(
        node_map=node_map,
        edge_map=edge_map,
        commodity_map=commodity_map,
        identity=identity,
    )


def compile_event(ext: ExtendedNetwork, event: Any) -> ProblemDelta:
    """Compile ``event`` into a delta against ``ext``'s current epoch.

    Delegates the stream-network surgery to
    :func:`repro.online.rebuild.apply_event` (the legacy full-rebuild path,
    kept as the oracle reference) and detects the dirty commodity set by
    object identity: ``apply_event`` shares every commodity object the
    event does not touch.
    """
    # local imports: repro.online imports this module at load time
    from repro.online.events import CapacityChange, DemandChange
    from repro.online.rebuild import apply_event

    result = apply_event(ext.stream_network, event)
    old_ids = {id(c) for c in ext.stream_network.commodities}
    dirty = tuple(
        c.name for c in result.network.commodities if id(c) not in old_ids
    )

    scalar: Optional[ScalarPatch] = None
    if isinstance(event, DemandChange):
        j = ext.commodity_view(event.commodity).index
        scalar = ScalarPatch(commodity_rate=((j, event.new_rate),))
    elif isinstance(event, CapacityChange):
        scalar = ScalarPatch(
            node_capacity=((ext.node_index(event.node), event.new_capacity),)
        )

    return ProblemDelta(
        base_epoch=ext.epoch,
        event=event,
        network=result.network,
        dropped_commodities=tuple(result.dropped_commodities),
        dirty_commodities=dirty,
        scalar=scalar,
    )


def apply_scalar_patch(
    ext: ExtendedNetwork,
    patch: ScalarPatch,
    network: Optional[StreamNetwork] = None,
) -> None:
    """Mutate ``ext`` in place per ``patch`` and bump its epoch.

    Every derived structure that does not depend on capacities or offered
    rates (plans, potentials, out-edge lists) survives untouched; the two
    lazy caches that do depend on them are invalidated.

    The patched vectors are *reallocated*, not written through: consumers
    cache loop-invariant derivations keyed on array identity (e.g. the
    penalty's ``_prepared`` tables), and "same object, new values" would
    silently serve them stale state.  A new epoch is a new array.
    """
    if patch.node_capacity:
        ext.capacity = ext.capacity.copy()
        for idx, cap in patch.node_capacity:
            ext.nodes[idx] = replace(ext.nodes[idx], capacity=cap)
            ext.capacity[idx] = cap
    if patch.commodity_rate:
        ext.lam = ext.lam.copy()
        ext.commodity_max_rates = ext.commodity_max_rates.copy()
        for j, rate in patch.commodity_rate:
            ext.commodities[j].max_rate = rate
            ext.lam[j] = rate
            ext.commodity_max_rates[j] = rate
    if patch.commodity_rate:
        # external inputs scale with lambda; utility-at-max is U_j(lambda_j)
        ext._external_inputs_template = None
        ext._utility_at_max = None
    if network is not None:
        ext.stream_network = network
    ext.epoch += 1


def apply_delta(ext: ExtendedNetwork, delta: ProblemDelta) -> AppliedDelta:
    """Advance ``ext`` one epoch per ``delta``.

    Scalar deltas mutate ``ext`` in place and return it; structural deltas
    return a freshly spliced network (``ext`` itself is left at its old
    epoch and remains usable, e.g. as the remap source for routing state).
    """
    if delta.base_epoch != ext.epoch:
        raise ModelError(
            f"stale delta: compiled against epoch {delta.base_epoch}, "
            f"but the network is at epoch {ext.epoch}"
        )
    if delta.scalar is not None:
        apply_scalar_patch(ext, delta.scalar, delta.network)
        return AppliedDelta(
            ext=ext, delta=delta, maps=_identity_maps(ext), structural=False
        )
    new_ext, maps = _splice(ext, delta)
    return AppliedDelta(ext=new_ext, delta=delta, maps=maps, structural=True)


def _splice_maps(
    old: ExtendedNetwork, skeleton: "ExtSkeleton"
) -> Tuple[np.ndarray, np.ndarray]:
    """Old-index -> new-index node/edge maps against a freshly built skeleton.

    When the old network carries its own skeleton (every network built by
    :func:`~repro.core.transform.build_extended_network` or by this module
    does), the translation walks the two skeletons' link/commodity tables
    directly -- ``O(M + J)`` dict hops, no per-edge key tuples.  Without it
    (a hand-assembled network), fall back to the generic per-element keying
    of :func:`build_index_maps`.
    """
    # NB: skeleton.name_to_index covers only the physical nodes (it is built
    # before the bandwidth/dummy blocks are laid out); the remap needs every
    # extended node
    new_node_pos = {n.name: n.index for n in skeleton.nodes}
    node_map = np.fromiter(
        (new_node_pos.get(n.name, -1) for n in old.nodes),
        dtype=np.intp,
        count=old.num_nodes,
    )

    old_skel = old._skeleton
    if old_skel is None:
        _, new_edge_pos = _key_tables(skeleton.nodes, skeleton.edges, skeleton.views)
        edge_map = np.fromiter(
            (new_edge_pos.get(_edge_key(e, old.commodities), -1) for e in old.edges),
            dtype=np.intp,
            count=old.num_edges,
        )
        return node_map, edge_map

    edge_map = np.full(old.num_edges, -1, dtype=np.intp)
    for link, old_idx in old_skel.processing_edge_of.items():
        new_idx = skeleton.processing_edge_of.get(link)
        if new_idx is not None:
            edge_map[old_idx] = new_idx
    for link, old_idx in old_skel.transfer_edge_of.items():
        new_idx = skeleton.transfer_edge_of.get(link)
        if new_idx is not None:
            edge_map[old_idx] = new_idx
    new_views = {v.name: v for v in skeleton.views}
    for old_view in old_skel.views:
        new_view = new_views.get(old_view.name)
        if new_view is not None:
            edge_map[old_view.input_edge] = new_view.input_edge
            edge_map[old_view.difference_edge] = new_view.difference_edge
    return node_map, edge_map


def _splice(
    old: ExtendedNetwork, delta: ProblemDelta
) -> Tuple[ExtendedNetwork, IndexMaps]:
    """Build the post-event extended network, re-deriving only dirty rows."""
    network = delta.network
    skeleton = _build_skeleton(network)
    num_edges = len(skeleton.edges)
    num_commodities = len(skeleton.views)
    cost = np.zeros((num_commodities, num_edges), dtype=float)
    gain = np.ones((num_commodities, num_edges), dtype=float)
    allowed = np.zeros((num_commodities, num_edges), dtype=bool)

    # old -> new translation via the stable keys, against the new skeleton
    node_map, edge_map = _splice_maps(old, skeleton)
    new_commodity_pos = {v.name: v.index for v in skeleton.views}
    commodity_map = np.fromiter(
        (new_commodity_pos.get(c.name, -1) for c in old.commodities),
        dtype=np.intp,
        count=old.num_commodities,
    )

    dirty = set(delta.dirty_commodities)
    old_views = {c.name: c for c in old.commodities}
    # new commodity index -> old commodity index, for rows carried by remap
    carried: Dict[int, int] = {}
    for j, commodity in enumerate(network.commodities):
        view = skeleton.views[j]
        old_view = old_views.get(commodity.name)
        if commodity.name in dirty or old_view is None:
            _fill_commodity_row(j, commodity, skeleton, cost, gain, allowed)
            continue
        old_edges = np.asarray(old_view.edge_indices, dtype=np.intp)
        old_nodes = np.asarray(old_view.node_indices, dtype=np.intp)
        mapped_edges = edge_map[old_edges]
        mapped_nodes = node_map[old_nodes]
        monotone = (
            bool(np.all(mapped_edges >= 0))
            and bool(np.all(mapped_nodes >= 0))
            and bool(np.all(np.diff(mapped_edges) > 0))
            and bool(np.all(np.diff(mapped_nodes) > 0))
        )
        if not monotone:
            # the event permuted this commodity's index neighbourhood (e.g.
            # the first user of a shared link changed); re-derive instead of
            # remapping -- rare, and correct either way
            _fill_commodity_row(j, commodity, skeleton, cost, gain, allowed)
            continue
        jo = old_view.index
        cost[j, mapped_edges] = old.cost[jo, old_edges]
        gain[j, mapped_edges] = old.gain[jo, old_edges]
        allowed[j, mapped_edges] = True
        view.edge_indices = mapped_edges.tolist()
        view.node_indices = mapped_nodes.tolist()
        view.topo_order = node_map[
            np.asarray(old_view.topo_order, dtype=np.intp)
        ].tolist()
        carried[j] = jo

    new_ext = ExtendedNetwork(
        nodes=skeleton.nodes,
        edges=skeleton.edges,
        commodities=skeleton.views,
        cost=cost,
        gain=gain,
        allowed=allowed,
        stream_network=network,
    )
    _check_bookkeeping(
        new_ext,
        network.physical.num_nodes,
        len(skeleton.used_links),
        num_commodities,
    )
    new_ext.epoch = old.epoch + 1
    new_ext._skeleton = skeleton
    _splice_plans(old, new_ext, carried, node_map, edge_map)

    maps = IndexMaps(
        node_map=node_map,
        edge_map=edge_map,
        commodity_map=commodity_map,
        identity=False,
    )
    return new_ext, maps


def _remap_flow_plan(
    plan: CommodityFlowPlan, node_map: np.ndarray, edge_map: np.ndarray
) -> CommodityFlowPlan:
    # gains/costs/offsets/unique_heads are index-free: share them with the
    # old plan (the remap is only valid when every element survived in
    # relative order, so block structure and values are unchanged)
    return CommodityFlowPlan(
        edges=np.ascontiguousarray(edge_map[plan.edges]),
        tails=np.ascontiguousarray(node_map[plan.tails]),
        heads=np.ascontiguousarray(node_map[plan.heads]),
        gains=plan.gains,
        costs=plan.costs,
        offsets=plan.offsets,
        unique_heads=plan.unique_heads,
    )


def _remap_gamma_plan(
    plan: CommodityGammaPlan, node_map: np.ndarray, edge_map: np.ndarray
) -> CommodityGammaPlan:
    if plan.nodes.size == 0:
        return plan
    return CommodityGammaPlan(
        nodes=np.ascontiguousarray(node_map[plan.nodes]),
        edge_matrix=np.where(plan.valid, edge_map[plan.edge_matrix], 0),
        valid=plan.valid,
    )


def _splice_plans(
    old: ExtendedNetwork,
    new: ExtendedNetwork,
    carried: Dict[int, int],
    node_map: np.ndarray,
    edge_map: np.ndarray,
) -> None:
    """Carry the per-commodity vectorization plans across the splice.

    Only plans the old network had actually built are carried (building
    them eagerly would *cost* time on consumers that never iterate).  The
    merged cross-commodity plans rebuild lazily from the per-commodity
    plans, which is a cheap concatenation.
    """
    if old._flow_plans is not None:
        new._flow_plans = [
            _remap_flow_plan(old._flow_plans[carried[j]], node_map, edge_map)
            if j in carried
            else new._build_flow_plan(view)
            for j, view in enumerate(new.commodities)
        ]
    if old._gamma_plans is not None:
        new._gamma_plans = [
            _remap_gamma_plan(old._gamma_plans[carried[j]], node_map, edge_map)
            if j in carried
            else new._build_gamma_plan(view)
            for j, view in enumerate(new.commodities)
        ]


def carry_routing(
    old_ext: ExtendedNetwork,
    old_routing: RoutingState,
    new_ext: ExtendedNetwork,
    maps: Optional[IndexMaps] = None,
) -> RoutingState:
    """Translate a routing state across a delta at the array level.

    Fully surviving commodities copy their rows verbatim; partially
    surviving ones scatter what survived and renormalise per node (nodes
    with no surviving mass keep the shed-everything default of
    :func:`~repro.core.routing.initial_routing`).  The result is always a
    valid routing decision on ``new_ext``.
    """
    if maps is None:
        maps = build_index_maps(old_ext, new_ext)
    routing = initial_routing(new_ext)
    if maps.identity:
        np.copyto(routing.phi, old_routing.phi)
        return routing

    old_views = {c.name: c for c in old_ext.commodities}
    for view in new_ext.commodities:
        old_view = old_views.get(view.name)
        if old_view is None:
            continue  # newly arrived commodity: shed-everything default
        jo, jn = old_view.index, view.index
        old_edges = np.asarray(old_view.edge_indices, dtype=np.intp)
        mapped = maps.edge_map[old_edges]
        survived = mapped >= 0
        new_edges = np.asarray(view.edge_indices, dtype=np.intp)
        if bool(survived.all()) and mapped.size == new_edges.size:
            # layout survived wholesale: the old row is already a valid
            # distribution over exactly these edges -- copy it verbatim
            routing.phi[jn, mapped] = old_routing.phi[jo, old_edges]
            continue
        carried_row = np.zeros(new_ext.num_edges, dtype=float)
        carried_row[mapped[survived]] = old_routing.phi[jo, old_edges[survived]]
        out_lists = new_ext.commodity_out_edges[jn]
        for node in view.node_indices:
            if node == view.sink:
                continue
            out = out_lists[node]
            if not out:
                continue
            carried = carried_row[out]
            total = float(carried.sum())
            if total > 1e-12:
                routing.phi[jn, out] = carried / total
    return routing


def _diff_arrays(label: str, a: np.ndarray, b: np.ndarray, out: List[str]) -> None:
    if a.shape != b.shape:
        out.append(f"{label}: shape {a.shape} != {b.shape}")
    elif not np.array_equal(a, b):
        out.append(f"{label}: values differ")


def diff_extended_networks(
    a: ExtendedNetwork, b: ExtendedNetwork, compare_plans: bool = False
) -> List[str]:
    """Exact (bitwise) structural comparison; returns human-readable diffs.

    Empty list means the two networks are indistinguishable to every
    consumer: same nodes/edges/views, same arrays, and (with
    ``compare_plans``) same vectorization plans.  Epochs are deliberately
    not compared -- a spliced network and a from-scratch rebuild of the
    same instance legitimately disagree there.
    """
    diffs: List[str] = []
    if [(n.index, n.name, n.kind, n.capacity, n.physical_link) for n in a.nodes] != [
        (n.index, n.name, n.kind, n.capacity, n.physical_link) for n in b.nodes
    ]:
        diffs.append("nodes differ")
    if [
        (e.index, e.tail, e.head, e.kind, e.physical_link, e.commodity)
        for e in a.edges
    ] != [
        (e.index, e.tail, e.head, e.kind, e.physical_link, e.commodity)
        for e in b.edges
    ]:
        diffs.append("edges differ")
    for va, vb in zip(a.commodities, b.commodities):
        if (
            va.index,
            va.name,
            va.source,
            va.sink,
            va.dummy,
            va.input_edge,
            va.difference_edge,
            va.max_rate,
        ) != (
            vb.index,
            vb.name,
            vb.source,
            vb.sink,
            vb.dummy,
            vb.input_edge,
            vb.difference_edge,
            vb.max_rate,
        ):
            diffs.append(f"commodity view {va.name!r}/{vb.name!r} differs")
        if va.edge_indices != vb.edge_indices:
            diffs.append(f"commodity {va.name!r}: edge_indices differ")
        if va.node_indices != vb.node_indices:
            diffs.append(f"commodity {va.name!r}: node_indices differ")
        if va.topo_order != vb.topo_order:
            diffs.append(f"commodity {va.name!r}: topo_order differs")
    if a.num_commodities != b.num_commodities:
        diffs.append(
            f"commodity count {a.num_commodities} != {b.num_commodities}"
        )
    _diff_arrays("capacity", a.capacity, b.capacity, diffs)
    _diff_arrays("lam", a.lam, b.lam, diffs)
    _diff_arrays("cost", a.cost, b.cost, diffs)
    _diff_arrays("gain", a.gain, b.gain, diffs)
    _diff_arrays("allowed", a.allowed, b.allowed, diffs)
    _diff_arrays("node_potentials", a.node_potentials, b.node_potentials, diffs)
    if a.out_edges != b.out_edges or a.in_edges != b.in_edges:
        diffs.append("adjacency lists differ")
    if a.commodity_out_edges != b.commodity_out_edges:
        diffs.append("commodity out-edge lists differ")
    if diffs or not compare_plans:
        return diffs

    for j, (pa, pb) in enumerate(zip(a.flow_plans, b.flow_plans)):
        _diff_arrays(f"flow_plans[{j}].edges", pa.edges, pb.edges, diffs)
        _diff_arrays(f"flow_plans[{j}].tails", pa.tails, pb.tails, diffs)
        _diff_arrays(f"flow_plans[{j}].heads", pa.heads, pb.heads, diffs)
        _diff_arrays(f"flow_plans[{j}].gains", pa.gains, pb.gains, diffs)
        _diff_arrays(f"flow_plans[{j}].costs", pa.costs, pb.costs, diffs)
        _diff_arrays(f"flow_plans[{j}].offsets", pa.offsets, pb.offsets, diffs)
        _diff_arrays(
            f"flow_plans[{j}].unique_heads", pa.unique_heads, pb.unique_heads, diffs
        )
    for j, (ga, gb) in enumerate(zip(a.gamma_plans, b.gamma_plans)):
        _diff_arrays(f"gamma_plans[{j}].nodes", ga.nodes, gb.nodes, diffs)
        _diff_arrays(
            f"gamma_plans[{j}].edge_matrix", ga.edge_matrix, gb.edge_matrix, diffs
        )
        _diff_arrays(f"gamma_plans[{j}].valid", ga.valid, gb.valid, diffs)
    for name, pa, pb in (
        ("merged_forward_plan", a.merged_forward_plan, b.merged_forward_plan),
        ("merged_reverse_plan", a.merged_reverse_plan, b.merged_reverse_plan),
    ):
        _diff_arrays(f"{name}.edges", pa.edges, pb.edges, diffs)
        _diff_arrays(f"{name}.raw_edges", pa.raw_edges, pb.raw_edges, diffs)
        _diff_arrays(f"{name}.tails", pa.tails, pb.tails, diffs)
        _diff_arrays(f"{name}.heads", pa.heads, pb.heads, diffs)
        _diff_arrays(f"{name}.gains", pa.gains, pb.gains, diffs)
        _diff_arrays(f"{name}.costs", pa.costs, pb.costs, diffs)
        _diff_arrays(f"{name}.offsets", pa.offsets, pb.offsets, diffs)
        _diff_arrays(f"{name}.unique_heads", pa.unique_heads, pb.unique_heads, diffs)
    mel_a, mel_b = a.merged_edge_list, b.merged_edge_list
    _diff_arrays("merged_edge_list.edges", mel_a.edges, mel_b.edges, diffs)
    _diff_arrays("merged_edge_list.raw_edges", mel_a.raw_edges, mel_b.raw_edges, diffs)
    _diff_arrays("merged_edge_list.tails", mel_a.tails, mel_b.tails, diffs)
    _diff_arrays("merged_edge_list.heads", mel_a.heads, mel_b.heads, diffs)
    _diff_arrays("merged_edge_list.g_tails", mel_a.g_tails, mel_b.g_tails, diffs)
    _diff_arrays("merged_edge_list.g_heads", mel_a.g_heads, mel_b.g_heads, diffs)
    mga, mgb = a.merged_gamma_plan, b.merged_gamma_plan
    _diff_arrays("merged_gamma_plan.nodes", mga.nodes, mgb.nodes, diffs)
    _diff_arrays(
        "merged_gamma_plan.edge_matrix", mga.edge_matrix, mgb.edge_matrix, diffs
    )
    _diff_arrays("merged_gamma_plan.valid", mga.valid, mgb.valid, diffs)
    return diffs
