"""Admission-control front end.

The optimisation determines the *rates* ``a_j`` each source may inject; this
module turns those rates into an enforcement mechanism for actual (bursty)
arrival processes, closing the loop the paper motivates in its introduction
("admission control the bursty and high volume input streams").

:class:`AdmissionController` holds the per-commodity admitted rates from any
:class:`~repro.core.solution.Solution` and shapes discrete arrival traces
with a token bucket per commodity: tokens accrue at ``a_j`` per second up to
a configurable burst depth, and data is admitted only against tokens.  Over
any window the admitted volume is bounded by ``a_j * T + burst``, so the
downstream network never sees sustained load above what the optimiser
provisioned for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence

import numpy as np

from repro.core.solution import Solution
from repro.exceptions import ModelError

__all__ = ["TokenBucket", "ShapedTrace", "AdmissionController"]


@dataclass
class TokenBucket:
    """A token bucket enforcing a sustained ``rate`` with ``burst`` slack."""

    rate: float
    burst: float
    tokens: float = field(init=False)

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ModelError(f"token bucket rate must be >= 0, got {self.rate}")
        if self.burst <= 0:
            raise ModelError(f"token bucket burst must be > 0, got {self.burst}")
        self.tokens = self.burst

    def offer(self, amount: float, elapsed: float) -> float:
        """Offer ``amount`` of data after ``elapsed`` seconds; return admitted."""
        if amount < 0 or elapsed < 0:
            raise ModelError("offer arguments must be non-negative")
        self.tokens = min(self.burst, self.tokens + self.rate * elapsed)
        admitted = min(amount, self.tokens)
        self.tokens -= admitted
        return admitted

    def reset(self) -> None:
        self.tokens = self.burst


@dataclass
class ShapedTrace:
    """Result of shaping one commodity's arrival trace."""

    offered: np.ndarray
    admitted: np.ndarray
    shed: np.ndarray

    @property
    def admitted_fraction(self) -> float:
        total = float(self.offered.sum())
        return float(self.admitted.sum()) / total if total > 0 else 1.0


class AdmissionController:
    """Enforce a solution's admitted rates on per-commodity arrival traces.

    Parameters
    ----------
    solution:
        Any solver/algorithm output; its ``admitted`` vector provides the
        sustained rates.
    burst_seconds:
        Token-bucket depth, expressed in seconds of the sustained rate
        (``burst = burst_seconds * a_j``); commodities with ``a_j = 0`` get a
        minimal epsilon bucket so the controller still functions.
    """

    def __init__(self, solution: Solution, burst_seconds: float = 1.0):
        if burst_seconds <= 0:
            raise ModelError("burst_seconds must be > 0")
        self.solution = solution
        self.rates: Dict[str, float] = solution.admitted_by_name
        self._buckets: Dict[str, TokenBucket] = {
            name: TokenBucket(rate=rate, burst=max(burst_seconds * rate, 1e-9))
            for name, rate in self.rates.items()
        }

    def rate(self, commodity: str) -> float:
        try:
            return self.rates[commodity]
        except KeyError:
            raise ModelError(f"unknown commodity {commodity!r}") from None

    def shape(
        self,
        commodity: str,
        offered: Sequence[float],
        slot_length: float = 1.0,
        reset: bool = True,
    ) -> ShapedTrace:
        """Shape a slotted arrival trace for one commodity.

        ``offered[t]`` is the data volume arriving in slot ``t`` (each of
        duration ``slot_length`` seconds).  Returns per-slot admitted and
        shed volumes.
        """
        if commodity not in self._buckets:
            raise ModelError(f"unknown commodity {commodity!r}")
        if slot_length <= 0:
            raise ModelError("slot_length must be > 0")
        bucket = self._buckets[commodity]
        if reset:
            bucket.reset()
        offered_arr = np.asarray(offered, dtype=float)
        if np.any(offered_arr < 0):
            raise ModelError("offered volumes must be non-negative")
        admitted = np.empty_like(offered_arr)
        for t, volume in enumerate(offered_arr):
            admitted[t] = bucket.offer(float(volume), slot_length)
        shed = offered_arr - admitted
        return ShapedTrace(offered=offered_arr, admitted=admitted, shed=shed)

    def shape_all(
        self,
        traces: Dict[str, Sequence[float]],
        slot_length: float = 1.0,
    ) -> Dict[str, ShapedTrace]:
        """Shape traces for several commodities at once."""
        return {
            name: self.shape(name, trace, slot_length=slot_length)
            for name, trace in traces.items()
        }

    def report(self) -> str:
        lines = ["AdmissionController rates:"]
        for view in self.solution.ext.commodities:
            rate = self.rates[view.name]
            lines.append(
                f"  {view.name}: admit {rate:.4g}/s of offered "
                f"{view.max_rate:.4g}/s ({100 * rate / view.max_rate:.1f}%)"
            )
        return "\n".join(lines)
