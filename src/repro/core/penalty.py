"""Convex node-resource penalty functions ``D_i(z)``.

Section 3 of the paper converts the per-node capacity constraints into a
smooth convex cost: for resource usage ``z`` at a node with budget ``C``, a
penalty ``D(z)`` is charged, with ``D`` convex, increasing, and
``D(z) -> inf`` as ``z -> C``.  The canonical choice given in the paper is

    ``D(z) = 1 / (C - z)``

and the overall objective becomes ``A = Y + eps * D`` for a tunable ``eps``.

Dummy nodes have ``C = inf`` and therefore zero penalty.

Safeguarded tails
-----------------
The pure barrier has an infinite derivative at ``z = C``; transiently
infeasible iterates (possible for aggressive step scales ``eta``) would
produce NaNs.  Every barrier here is therefore extended beyond a switch point
``z_s = switch_fraction * C`` by the C^1 quadratic that matches the barrier's
value and first derivative at ``z_s`` and keeps curving upward.  The extension
only matters for wildly infeasible transients: the converged solution of the
penalised problem sits strictly inside capacity (the barrier pushes it there),
where the extension is inactive, so it does not change any fixed point.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Union

import numpy as np

from repro.exceptions import ValidationError

ArrayLike = Union[float, np.ndarray]

# Slope of the linear stand-in penalty charged on a *drained* host (a node
# whose budget was zeroed after model build, e.g. by a failure model).  The
# true limit of the barrier as C -> 0 is an infinite derivative, but an inf
# slope poisons the marginal-cost wave (``0 * inf = nan`` on unused edges),
# exactly the failure mode the safeguarded tails exist to prevent.  A slope
# this many orders of magnitude above any real marginal cost drives all flow
# off the host within one gradient step while keeping arithmetic finite.
_DRAINED_SLOPE = 1e12

__all__ = [
    "PenaltyFunction",
    "InverseBarrier",
    "LogBarrier",
    "QuadraticOverload",
    "check_convex_increasing",
]


class PenaltyFunction(ABC):
    """Convex increasing penalty of node resource usage ``z`` given budget ``C``.

    Implementations must be vectorised over ``usage`` and ``capacity`` and
    must return exactly 0 penalty and 0 derivative wherever
    ``capacity == inf`` (dummy nodes).
    """

    @abstractmethod
    def value(self, usage: ArrayLike, capacity: ArrayLike) -> ArrayLike:
        """Return ``D(usage)`` for the given node budget(s)."""

    @abstractmethod
    def derivative(self, usage: ArrayLike, capacity: ArrayLike) -> ArrayLike:
        """Return ``D'(usage)`` for the given node budget(s)."""


class _SafeguardedBarrier(PenaltyFunction):
    """Shared machinery: true barrier below the switch, quadratic tail above.

    ``tail_stiffness`` scales the tail's curvature: the C^1 extension with
    the barrier's own second derivative underestimates how violently the true
    barrier grows, so a stiffness > 1 keeps transiently-infeasible iterates
    from drifting far past capacity while changing nothing below the switch.
    """

    def __init__(self, switch_fraction: float = 0.99, tail_stiffness: float = 8.0):
        if not 0.0 < switch_fraction < 1.0:
            raise ValidationError(
                f"switch_fraction must lie in (0, 1), got {switch_fraction}"
            )
        if not tail_stiffness >= 1.0:
            raise ValidationError(
                f"tail_stiffness must be >= 1, got {tail_stiffness}"
            )
        self.switch_fraction = float(switch_fraction)
        self.tail_stiffness = float(tail_stiffness)
        self._cap_cache = None

    def _prepared(self, capacity: np.ndarray):
        """Cache ``(barrier, drained, c, zs)`` per capacity array.

        ``barrier`` selects the nodes with a finite positive budget (the only
        ones the barrier formulas are defined on); ``drained`` selects
        zero-or-negative budgets (hosts drained after model build), handled
        by their limit values.  Keyed on array identity: a network's capacity
        vector is built once per state, so the same array flows into every
        per-iteration call and this work is loop-invariant.
        """
        cached = getattr(self, "_cap_cache", None)  # robust to unpickled instances
        if cached is not None and cached[0] is capacity:
            return cached[1], cached[2], cached[3], cached[4]
        barrier = np.isfinite(capacity) & (capacity > 0.0)
        drained = capacity <= 0.0
        c = capacity[barrier]
        zs = self.switch_fraction * c
        self._cap_cache = (capacity, barrier, drained, c, zs)
        return barrier, drained, c, zs

    # -- the underlying barrier on usage < capacity ---------------------------
    @abstractmethod
    def _barrier_value(self, usage: np.ndarray, capacity: np.ndarray) -> np.ndarray:
        ...

    @abstractmethod
    def _barrier_derivative(
        self, usage: np.ndarray, capacity: np.ndarray
    ) -> np.ndarray:
        ...

    @abstractmethod
    def _barrier_second(self, usage: np.ndarray, capacity: np.ndarray) -> np.ndarray:
        ...

    def value(self, usage: ArrayLike, capacity: ArrayLike) -> ArrayLike:
        usage = np.asarray(usage, dtype=float)
        capacity = np.asarray(capacity, dtype=float)
        if usage.shape != capacity.shape:
            usage, capacity = np.broadcast_arrays(usage, capacity)
        out = np.zeros_like(usage)
        barrier, drained, c, zs = self._prepared(capacity)
        if drained.any():
            # drained host (budget zeroed after build): linear stand-in
            # penalty -- convex, increasing, zero at idle, and steep enough
            # to dominate every real cost, without the ``1/(C-z)``
            # divide-by-zero of the barrier formulas at C = 0
            out[drained] = _DRAINED_SLOPE * usage[drained]
        if not barrier.any():
            return out if out.ndim else float(out)
        z = usage[barrier]
        inner = z <= zs
        if inner.all():  # common case: everything strictly inside the barrier
            out[barrier] = self._barrier_value(z, c)
            return out if out.ndim else float(out)
        res = np.empty_like(z)
        res[inner] = self._barrier_value(z[inner], c[inner])
        zo, co, zso = z[~inner], c[~inner], zs[~inner]
        v0 = self._barrier_value(zso, co)
        d0 = self._barrier_derivative(zso, co)
        h0 = self.tail_stiffness * self._barrier_second(zso, co)
        dz = zo - zso
        res[~inner] = v0 + d0 * dz + 0.5 * h0 * dz**2
        out[barrier] = res
        return out if out.ndim else float(out)

    def derivative(self, usage: ArrayLike, capacity: ArrayLike) -> ArrayLike:
        usage = np.asarray(usage, dtype=float)
        capacity = np.asarray(capacity, dtype=float)
        if usage.shape != capacity.shape:
            usage, capacity = np.broadcast_arrays(usage, capacity)
        out = np.zeros_like(usage)
        barrier, drained, c, zs = self._prepared(capacity)
        if drained.any():
            # steer the gradient away from a drained host regardless of its
            # current load; finite (unlike the barrier's C -> 0 limit) so the
            # marginal-cost wave never multiplies ``0 * inf``
            out[drained] = _DRAINED_SLOPE
        if not barrier.any():
            return out if out.ndim else float(out)
        z = usage[barrier]
        inner = z <= zs
        if inner.all():
            out[barrier] = self._barrier_derivative(z, c)
            return out if out.ndim else float(out)
        res = np.empty_like(z)
        res[inner] = self._barrier_derivative(z[inner], c[inner])
        zo, co, zso = z[~inner], c[~inner], zs[~inner]
        d0 = self._barrier_derivative(zso, co)
        h0 = self.tail_stiffness * self._barrier_second(zso, co)
        res[~inner] = d0 + h0 * (zo - zso)
        out[barrier] = res
        return out if out.ndim else float(out)


class InverseBarrier(_SafeguardedBarrier):
    """The paper's penalty ``D(z) = 1/(C - z)`` (minus the constant ``1/C``).

    We subtract ``D(0) = 1/C`` so that an idle node incurs zero penalty; this
    shifts the objective by a constant and changes no gradients or optima, but
    makes reported costs comparable across networks.
    """

    def _barrier_value(self, usage, capacity):
        return 1.0 / (capacity - usage) - 1.0 / capacity

    def _barrier_derivative(self, usage, capacity):
        return 1.0 / (capacity - usage) ** 2

    def _barrier_second(self, usage, capacity):
        return 2.0 / (capacity - usage) ** 3

    def __repr__(self) -> str:
        return (
            f"InverseBarrier(switch_fraction={self.switch_fraction}, "
            f"tail_stiffness={self.tail_stiffness})"
        )


class LogBarrier(_SafeguardedBarrier):
    """``D(z) = -log(1 - z/C)``: a milder barrier, also convex & increasing."""

    def _barrier_value(self, usage, capacity):
        return -np.log1p(-usage / capacity)

    def _barrier_derivative(self, usage, capacity):
        return 1.0 / (capacity - usage)

    def _barrier_second(self, usage, capacity):
        return 1.0 / (capacity - usage) ** 2

    def __repr__(self) -> str:
        return (
            f"LogBarrier(switch_fraction={self.switch_fraction}, "
            f"tail_stiffness={self.tail_stiffness})"
        )


class QuadraticOverload(PenaltyFunction):
    """``D(z) = (max(0, z - rho*C))^2 / C``: a soft (non-barrier) penalty.

    Unlike the barriers above this does *not* diverge at capacity, so it does
    not by itself guarantee feasibility -- it is provided for ablation studies
    of the penalty choice (see DESIGN.md, TAB-EPS).
    """

    def __init__(self, threshold_fraction: float = 0.9):
        if not 0.0 < threshold_fraction <= 1.0:
            raise ValidationError(
                f"threshold_fraction must lie in (0, 1], got {threshold_fraction}"
            )
        self.threshold_fraction = float(threshold_fraction)

    def value(self, usage: ArrayLike, capacity: ArrayLike) -> ArrayLike:
        usage, capacity = np.broadcast_arrays(
            np.asarray(usage, dtype=float), np.asarray(capacity, dtype=float)
        )
        out = np.zeros_like(usage)
        finite = np.isfinite(capacity)
        over = np.maximum(
            0.0, usage[finite] - self.threshold_fraction * capacity[finite]
        )
        out[finite] = over**2 / capacity[finite]
        return out if out.ndim else float(out)

    def derivative(self, usage: ArrayLike, capacity: ArrayLike) -> ArrayLike:
        usage, capacity = np.broadcast_arrays(
            np.asarray(usage, dtype=float), np.asarray(capacity, dtype=float)
        )
        out = np.zeros_like(usage)
        finite = np.isfinite(capacity)
        over = np.maximum(
            0.0, usage[finite] - self.threshold_fraction * capacity[finite]
        )
        out[finite] = 2.0 * over / capacity[finite]
        return out if out.ndim else float(out)

    def __repr__(self) -> str:
        return f"QuadraticOverload(threshold_fraction={self.threshold_fraction})"


def check_convex_increasing(
    penalty: PenaltyFunction,
    capacity: float = 10.0,
    lo: float = 0.0,
    hi_fraction: float = 1.2,
    num: int = 513,
    tol: float = 1e-9,
) -> None:
    """Numerically verify convexity/monotonicity of ``penalty`` on a grid.

    The grid deliberately extends past capacity (``hi_fraction > 1``) so the
    safeguarded tail is exercised too.  Raises :class:`ValidationError` on
    violation.
    """
    grid = np.linspace(lo, hi_fraction * capacity, num)
    values = np.asarray(penalty.value(grid, capacity), dtype=float)
    derivs = np.asarray(penalty.derivative(grid, capacity), dtype=float)
    if not np.all(np.isfinite(values)) or not np.all(np.isfinite(derivs)):
        raise ValidationError("penalty produced non-finite values on test grid")
    if np.any(derivs < -tol):
        raise ValidationError("penalty is not increasing (negative derivative)")
    if np.any(np.diff(derivs) < -tol):
        raise ValidationError("penalty is not convex (derivative decreases)")
