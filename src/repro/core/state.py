"""Sparse commodity-major model core: the :class:`ModelState` array API.

Every benchmark before this module topped out around ~120 extended nodes /
a dozen commodities, because the per-iteration hot path carried two dense
``(J, E)`` products -- the usage sum of eq. (4) and the edge-marginal table
of eq. (15) -- plus per-commodity Python loops in the sharded backends.  At
fixed graph density the dense work grows like ``J * (E + V) = O(J^2)``
while the *allowed* cells (the union of the commodities' subgraph edges)
grow only like ``O(J)``: the dense core is asymptotically quadratic in a
linear-sized problem.

:class:`ModelState` stores the hot state commodity-major and flat --
node ``j*V + v``, edge ``j*E + e`` -- behind ``scipy.sparse`` CSR
structure, so the flow balance (eq. (3)), the marginal-cost wave
(eqs. (9)-(11)) and the resource-usage sum (eq. (4)) all become sparse
mat-vec sweeps over the ``P`` allowed cells with no per-edge (and no
per-commodity) Python in the inner loop.

Bit-identity with the object core
---------------------------------

The scalar reference accumulates floating-point sums in a specific order,
and float addition is not associative, so "mathematically equal" is not
enough -- this repo pins *bit* identity across every engine.  The CSR
sweeps reproduce the scalar order exactly:

* **Forward wave.**  Edges are levelled by the *longest-path depth of
  their head*, so every in-edge of a node lands in one level and the
  node's traffic is written exactly once.  Within a level, entries are
  ordered by ``(j, scalar visitation position)``; the per-head sum is a
  CSR row-sum, and ``scipy``'s ``csr_matvec`` accumulates the stored
  entries sequentially from a zero accumulator -- the same
  ``((0 + c1) + c2) + ...`` association as the scalar walk, because every
  head's external input is zero (only dummy sources receive input and
  they have no in-edges).  Skipped zero contributions add exact ``+0.0``
  over non-negative partial sums, the same argument the merged level
  plans already rely on.
* **Reverse wave.**  Nodes are levelled by longest-path height above the
  sink; each node's ``dA/dr`` is one CSR row-sum over its out-edges in
  ``commodity_out_edges`` order -- the scalar gather's exact order, from
  the same zero accumulator.
* **Usage.**  Cells are ordered ``(j, e)``; the per-edge CSR row then
  sums commodities in ascending ``j``, which is precisely the sequential
  axis-0 ``np.add.reduce`` association of the dense path (off-graph dense
  terms are exact ``+0.0``).  ``cost * (t * phi)`` against the dense
  ``(t * phi) * cost`` is a bitwise-commutative multiply.

The oracle (``repro.validate.DifferentialOracle.compare_cores``) and the
property tests pin all of this on real and randomized instances.

Core selection
--------------

``REPRO_MODEL_CORE`` picks the implementation: ``"array"`` (default, this
module) or ``"object"`` (the founding per-commodity object-walk core,
kept as the differential reference for one release).  The switch is read
per call, so tests can toggle it with ``monkeypatch.setenv``.

Sharding
--------

Because all hot arrays are commodity-major and levels store their entries
sorted by commodity, a parallel shard over commodities ``[lo, hi)`` is a
*contiguous row-block*: :meth:`ModelState.block` precomputes the level
slices once and the block kernels run the same sparse sweeps restricted
to the block -- this is what collapses the ~3x per-commodity dispatch
handicap of the sharded backends (docs/parallelism.md).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.core.transform import CommodityGammaPlan, ExtendedNetwork

__all__ = [
    "ModelState",
    "WaveLevel",
    "BlockPlans",
    "active_core",
    "use_array_core",
    "MODEL_CORE_ENV",
    "MODEL_CORE_NAMES",
]

# environment switch between the array core (default) and the legacy
# object-walk core; read per call so tests can monkeypatch it
MODEL_CORE_ENV = "REPRO_MODEL_CORE"
MODEL_CORE_NAMES = ("array", "object")


def active_core() -> str:
    """The selected model core: ``"array"`` (default) or ``"object"``."""
    name = os.environ.get(MODEL_CORE_ENV) or "array"
    if name not in MODEL_CORE_NAMES:
        raise ValueError(
            f"unknown model core {name!r} in ${MODEL_CORE_ENV}; "
            f"expected one of {MODEL_CORE_NAMES}"
        )
    return name


def use_array_core() -> bool:
    """True when the sparse array core should run the hot path."""
    return active_core() == "array"


@dataclass(frozen=True)
class WaveLevel:
    """One depth level of a flattened cross-commodity wave.

    ``nodes`` are the level's scatter targets (flat ids, ascending, hence
    grouped by commodity); ``S`` is the selection CSR summing the level's
    entry contributions into them in exact scalar order.  ``entry_starts``
    / ``node_starts`` are ``(J + 1,)`` commodity boundaries into the entry
    arrays / ``nodes``, which is what makes a commodity range a contiguous
    slice of every array here.
    """

    nodes: np.ndarray  # (n,) flat node ids (j*V + v), ascending
    edges: np.ndarray  # (p,) flat edge ids (j*E + e), (j, pos) order
    raw: np.ndarray  # (p,) plain edge ids
    tails: np.ndarray  # (p,) flat tail node ids
    heads: np.ndarray  # (p,) flat head node ids
    gains: np.ndarray  # (p,) gain[j, e]
    costs: np.ndarray  # (p,) cost[j, e]
    S: sp.csr_matrix  # (n, p) selection matrix, data == 1.0
    cell_pos: np.ndarray  # (p,) position of each entry in the cell list
    entry_starts: np.ndarray  # (J + 1,) commodity slices into entries
    node_starts: np.ndarray  # (J + 1,) commodity slices into nodes


@dataclass(frozen=True)
class BlockPlans:
    """Precomputed restriction of a :class:`ModelState` to rows ``[lo, hi)``.

    The per-level tuples hold ``(nodes, edges, raw, tails, heads, gains,
    costs, S, cell_pos)`` views sliced to the block; ``gamma_plan`` is the
    contiguous row-block of the merged Gamma plan (``None`` when the block
    has no branch nodes).
    """

    lo: int
    hi: int
    forward: Tuple[tuple, ...]
    reverse: Tuple[tuple, ...]
    cell_lo: int
    cell_hi: int
    usage_S: sp.csr_matrix  # (E, cell_hi - cell_lo)
    gamma_plan: Optional[CommodityGammaPlan]


def _level_split(keys: np.ndarray) -> List[Tuple[int, int]]:
    """``[(s, e), ...]`` slices of equal consecutive values in sorted ``keys``."""
    if keys.size == 0:
        return []
    boundaries = np.flatnonzero(np.diff(keys)) + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [keys.size]))
    return list(zip(starts.tolist(), ends.tolist()))


def _selection_csr(
    targets: np.ndarray, groups: np.ndarray, data: Optional[np.ndarray] = None
) -> sp.csr_matrix:
    """CSR summing entry ``p`` into row ``searchsorted(groups, targets[p])``.

    ``groups`` must be sorted unique.  Column ``p`` is the entry position,
    so ``tocsr``'s (row, col) ordering stores each row's entries in entry
    order -- which the callers arrange to be the scalar visitation order.
    """
    n = targets.size
    rows = np.searchsorted(groups, targets)
    values = np.ones(n, dtype=float) if data is None else np.asarray(data, dtype=float)
    matrix = sp.csr_matrix(
        (values, (rows, np.arange(n, dtype=np.intp))),
        shape=(groups.size, n),
    )
    matrix.sort_indices()
    return matrix


def _csr_row_col_block(
    S: sp.csr_matrix, r0: int, r1: int, c0: int, c1: int
) -> sp.csr_matrix:
    """The ``S[r0:r1, c0:c1]`` block, assuming those rows only touch those
    columns (true by construction for commodity row-blocks)."""
    p0, p1 = int(S.indptr[r0]), int(S.indptr[r1])
    return sp.csr_matrix(
        (
            S.data[p0:p1],
            S.indices[p0:p1] - c0,
            S.indptr[r0 : r1 + 1] - p0,
        ),
        shape=(r1 - r0, c1 - c0),
    )


class ModelState:
    """Flat commodity-major hot state of one :class:`ExtendedNetwork`.

    Obtain via :meth:`ModelState.of` -- the instance is cached on the
    network.  The structure depends only on the network's *topology* (the
    allowed edge sets, plans, gains and costs), which never mutates in
    place: scalar patches touch capacities/rates only and structural
    events splice a brand-new network, so an id-keyed cache is safe across
    epochs.
    """

    def __init__(self, ext: ExtendedNetwork) -> None:
        self.ext = ext
        J, E, V = ext.num_commodities, ext.num_edges, ext.num_nodes
        self.num_commodities = J
        self.num_edges = E
        self.num_nodes = V
        self.edge_tail = ext.edge_tail

        plans = ext.flow_plans

        # -- cell list: every allowed (j, e), ordered by (j, e) ----------------
        cell_parts_e: List[np.ndarray] = []
        for j in range(J):
            cell_parts_e.append(np.asarray(ext.commodity_edge_arrays[j], dtype=np.intp))
        cell_counts = np.array([part.size for part in cell_parts_e], dtype=np.intp)
        raw_cells = (
            np.concatenate(cell_parts_e) if cell_parts_e else np.empty(0, dtype=np.intp)
        )
        cell_j = np.repeat(np.arange(J, dtype=np.intp), cell_counts)
        self.cell_raw = raw_cells
        self.cell_edges = cell_j * E + raw_cells
        self.cell_tails = cell_j * V + ext.edge_tail[raw_cells]
        self.cell_heads = cell_j * V + ext.edge_head[raw_cells]
        self.cell_cost = np.ascontiguousarray(ext.cost[cell_j, raw_cells])
        self.cell_gain = np.ascontiguousarray(ext.gain[cell_j, raw_cells])
        self.cell_g_tail = np.ascontiguousarray(
            ext.node_potentials[cell_j, ext.edge_tail[raw_cells]]
        )
        self.cell_g_head = np.ascontiguousarray(
            ext.node_potentials[cell_j, ext.edge_head[raw_cells]]
        )
        self.cell_starts = np.concatenate(
            ([0], np.cumsum(cell_counts))
        ).astype(np.intp)
        self.num_cells = int(self.cell_edges.size)

        # eq. (4): per-edge usage as one (E, P) CSR whose row ``e`` holds the
        # commodity cells of ``e`` in ascending ``j`` -- the dense axis-0
        # reduce's association
        self.usage_S = _selection_csr(
            self.cell_raw,
            np.arange(E, dtype=np.intp),
            data=self.cell_cost,
        )

        # position of a flat edge in the cell list (for the tag flood)
        cell_lookup = np.full(J * E, -1, dtype=np.intp)
        cell_lookup[self.cell_edges] = np.arange(self.num_cells, dtype=np.intp)

        # -- depth levelling ---------------------------------------------------
        fwd_rows: List[Tuple[np.ndarray, ...]] = []
        rev_rows: List[Tuple[np.ndarray, ...]] = []
        for j in range(J):
            plan = plans[j]
            p = plan.edges.size
            if p == 0:
                continue
            depth = np.zeros(V, dtype=np.intp)
            height = np.zeros(V, dtype=np.intp)
            offsets = plan.offsets
            nblocks = len(offsets) - 1
            for b in range(nblocks):
                s, e = offsets[b], offsets[b + 1]
                np.maximum.at(depth, plan.heads[s:e], depth[plan.tails[s:e]] + 1)
            for b in range(nblocks - 1, -1, -1):
                s, e = offsets[b], offsets[b + 1]
                np.maximum.at(height, plan.tails[s:e], height[plan.heads[s:e]] + 1)
            pos = np.arange(p, dtype=np.intp)
            j_col = np.full(p, j, dtype=np.intp)
            fwd_rows.append(
                (depth[plan.heads], j_col, pos, plan.edges, plan.tails, plan.heads,
                 plan.gains, plan.costs)
            )
            rev_rows.append(
                (height[plan.tails], j_col, pos, plan.edges, plan.tails, plan.heads,
                 plan.gains, plan.costs)
            )

        def build_levels(rows: List[Tuple[np.ndarray, ...]], by_head: bool):
            if not rows:
                return ()
            key = np.concatenate([r[0] for r in rows])
            j_col = np.concatenate([r[1] for r in rows])
            pos = np.concatenate([r[2] for r in rows])
            edges = np.concatenate([r[3] for r in rows])
            tails = np.concatenate([r[4] for r in rows])
            heads = np.concatenate([r[5] for r in rows])
            gains = np.concatenate([r[6] for r in rows])
            costs = np.concatenate([r[7] for r in rows])
            order = np.lexsort((pos, j_col, key))
            key, j_col = key[order], j_col[order]
            edges, tails, heads = edges[order], tails[order], heads[order]
            gains, costs = gains[order], costs[order]
            flat_edges = j_col * E + edges
            flat_tails = j_col * V + tails
            flat_heads = j_col * V + heads
            levels = []
            j_range = np.arange(J + 1, dtype=np.intp)
            for s, e in _level_split(key):
                scatter = flat_heads[s:e] if by_head else flat_tails[s:e]
                nodes = np.unique(scatter)
                levels.append(
                    WaveLevel(
                        nodes=nodes,
                        edges=flat_edges[s:e],
                        raw=edges[s:e],
                        tails=flat_tails[s:e],
                        heads=flat_heads[s:e],
                        gains=np.ascontiguousarray(gains[s:e]),
                        costs=np.ascontiguousarray(costs[s:e]),
                        S=_selection_csr(scatter, nodes),
                        cell_pos=cell_lookup[flat_edges[s:e]],
                        entry_starts=np.searchsorted(j_col[s:e], j_range).astype(
                            np.intp
                        ),
                        node_starts=np.searchsorted(nodes // V, j_range).astype(
                            np.intp
                        ),
                    )
                )
            return tuple(levels)

        self.forward_levels = build_levels(fwd_rows, by_head=True)
        self.reverse_levels = build_levels(rev_rows, by_head=False)

        # merged Gamma plan row boundaries per commodity (rows are appended
        # in commodity order by _build_merged_gamma_plan)
        gamma_counts = np.array(
            [ext.gamma_plans[j].nodes.size for j in range(J)], dtype=np.intp
        )
        self.gamma_starts = np.concatenate(([0], np.cumsum(gamma_counts))).astype(
            np.intp
        )

        self._blocks: Dict[Tuple[int, int], BlockPlans] = {}

    # -- construction / caching ----------------------------------------------------
    @classmethod
    def of(cls, ext: ExtendedNetwork) -> "ModelState":
        """The (cached) array state of ``ext``; builds on first use."""
        state = getattr(ext, "_model_state", None)
        if state is None:
            state = cls(ext)
            ext._model_state = state
        return state

    # -- full-width kernels ----------------------------------------------------------
    def solve_traffic_into(self, t_flat: np.ndarray, phi_flat: np.ndarray) -> None:
        """Eq. (3) forward wave over ``t_flat`` (pre-filled with external
        inputs), one CSR mat-vec per depth level."""
        for lv in self.forward_levels:
            contrib = t_flat[lv.tails] * phi_flat[lv.edges] * lv.gains
            t_flat[lv.nodes] = lv.S.dot(contrib)

    def resource_usage(
        self, phi_flat: np.ndarray, t_flat: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Eqs. (4)-(5) from the allowed cells only: ``O(P + E)``, not
        ``O(J * E)``."""
        contrib = t_flat[self.cell_tails] * phi_flat[self.cell_edges]
        edge_usage = self.usage_S.dot(contrib)
        node_usage = np.zeros(self.num_nodes, dtype=float)
        np.add.at(node_usage, self.edge_tail, edge_usage)
        return edge_usage, node_usage

    def marginal_costs_into(
        self, dadr_flat: np.ndarray, phi_flat: np.ndarray, dadf: np.ndarray
    ) -> None:
        """Eq. (9) reverse wave into ``dadr_flat`` (pre-zeroed)."""
        for lv in self.reverse_levels:
            contrib = phi_flat[lv.edges] * (
                dadf[lv.raw] * lv.costs + lv.gains * dadr_flat[lv.heads]
            )
            dadr_flat[lv.nodes] = lv.S.dot(contrib)

    def marginal_costs(self, phi_flat: np.ndarray, dadf: np.ndarray) -> np.ndarray:
        dadr = np.zeros((self.num_commodities, self.num_nodes), dtype=float)
        self.marginal_costs_into(dadr.reshape(-1), phi_flat, dadf)
        return dadr

    def edge_marginals_dense(
        self, dadf: np.ndarray, dadr_flat: np.ndarray
    ) -> np.ndarray:
        """Eq. (15)'s bracket as a sparse-filled ``(J, E)`` table.

        Allowed cells carry the exact dense expression; off-graph cells are
        0.0 (the dense object core leaves ``dadr[head]`` there, but every
        consumer of the iteration context's ``delta`` masks to allowed
        cells, so the difference is unobservable -- the public
        :func:`repro.core.marginals.all_edge_marginals` keeps the dense
        semantics for direct callers).
        """
        delta = np.zeros((self.num_commodities, self.num_edges), dtype=float)
        delta.reshape(-1)[self.cell_edges] = (
            dadf[self.cell_raw] * self.cell_cost
            + self.cell_gain * dadr_flat[self.cell_heads]
        )
        return delta

    # -- row-block kernels (shards of the parallel backends) --------------------------
    def block(self, lo: int, hi: int) -> BlockPlans:
        """The cached restriction of every plan to commodities ``[lo, hi)``."""
        key = (lo, hi)
        plans = self._blocks.get(key)
        if plans is not None:
            return plans

        def slice_levels(levels: Tuple[WaveLevel, ...]) -> Tuple[tuple, ...]:
            out = []
            for lv in levels:
                s, e = int(lv.entry_starts[lo]), int(lv.entry_starts[hi])
                if s == e:
                    continue
                r0, r1 = int(lv.node_starts[lo]), int(lv.node_starts[hi])
                out.append(
                    (
                        lv.nodes[r0:r1],
                        lv.edges[s:e],
                        lv.raw[s:e],
                        lv.tails[s:e],
                        lv.heads[s:e],
                        lv.gains[s:e],
                        lv.costs[s:e],
                        _csr_row_col_block(lv.S, r0, r1, s, e),
                        lv.cell_pos[s:e],
                    )
                )
            return tuple(out)

        c0, c1 = int(self.cell_starts[lo]), int(self.cell_starts[hi])
        usage_S = sp.csr_matrix(
            (
                self.cell_cost[c0:c1],
                (self.cell_raw[c0:c1], np.arange(c1 - c0, dtype=np.intp)),
            ),
            shape=(self.num_edges, c1 - c0),
        )
        usage_S.sort_indices()

        g0, g1 = int(self.gamma_starts[lo]), int(self.gamma_starts[hi])
        gamma_plan: Optional[CommodityGammaPlan] = None
        if g1 > g0:
            merged = self.ext.merged_gamma_plan
            gamma_plan = CommodityGammaPlan(
                nodes=merged.nodes[g0:g1],
                edge_matrix=merged.edge_matrix[g0:g1],
                valid=merged.valid[g0:g1],
            )

        plans = BlockPlans(
            lo=lo,
            hi=hi,
            forward=slice_levels(self.forward_levels),
            reverse=slice_levels(self.reverse_levels),
            cell_lo=c0,
            cell_hi=c1,
            usage_S=usage_S,
            gamma_plan=gamma_plan,
        )
        self._blocks[key] = plans
        return plans

    def solve_traffic_block(
        self, t_flat: np.ndarray, phi_flat: np.ndarray, lo: int, hi: int
    ) -> None:
        """Forward wave restricted to rows ``[lo, hi)`` (rows pre-filled
        with external inputs).  Reads and writes only the block's rows."""
        for nodes, edges, _raw, tails, _heads, gains, _costs, S, _cp in self.block(
            lo, hi
        ).forward:
            contrib = t_flat[tails] * phi_flat[edges] * gains
            t_flat[nodes] = S.dot(contrib)

    def usage_partial_block(
        self, phi_flat: np.ndarray, t_flat: np.ndarray, lo: int, hi: int
    ) -> np.ndarray:
        """The block's ``(E,)`` usage partial sum.

        Summing shard partials in ascending shard order reproduces the
        full CSR row-sum association exactly (contiguous sub-sums of a
        left-to-right sequential sum).
        """
        plans = self.block(lo, hi)
        c0, c1 = plans.cell_lo, plans.cell_hi
        contrib = t_flat[self.cell_tails[c0:c1]] * phi_flat[self.cell_edges[c0:c1]]
        return plans.usage_S.dot(contrib)

    def marginal_costs_block(
        self,
        dadr_flat: np.ndarray,
        phi_flat: np.ndarray,
        dadf: np.ndarray,
        lo: int,
        hi: int,
    ) -> None:
        """Reverse wave restricted to rows ``[lo, hi)`` (rows pre-zeroed)."""
        for nodes, edges, raw, _tails, heads, gains, costs, S, _cp in self.block(
            lo, hi
        ).reverse:
            contrib = phi_flat[edges] * (dadf[raw] * costs + gains * dadr_flat[heads])
            dadr_flat[nodes] = S.dot(contrib)

    def edge_marginals_block(
        self,
        delta_flat: np.ndarray,
        dadf: np.ndarray,
        dadr_flat: np.ndarray,
        lo: int,
        hi: int,
    ) -> None:
        """Sparse-fill the block's rows of the ``delta`` table (rows
        pre-zeroed)."""
        plans = self.block(lo, hi)
        c0, c1 = plans.cell_lo, plans.cell_hi
        delta_flat[self.cell_edges[c0:c1]] = (
            dadf[self.cell_raw[c0:c1]] * self.cell_cost[c0:c1]
            + self.cell_gain[c0:c1] * dadr_flat[self.cell_heads[c0:c1]]
        )

    def blocked_sets_block(
        self,
        blocked_flat: np.ndarray,
        phi_flat: np.ndarray,
        t_flat: np.ndarray,
        dadr_flat: np.ndarray,
        delta_flat: np.ndarray,
        eta: float,
        lo: int,
        hi: int,
        phi_zero_tol: float = 1e-12,
        phi_positive_tol: float = 1e-12,
    ) -> bool:
        """Eq. (18) blocked sets for rows ``[lo, hi)``, written into the
        pre-cleared ``blocked_flat``; returns whether anything is blocked.

        Identical comparisons to :func:`repro.core.blocking.
        compute_all_blocked_sets` restricted to the block's cells; the tag
        flood runs the block's reverse levels (boolean OR, order-free).
        """
        plans = self.block(lo, hi)
        c0, c1 = plans.cell_lo, plans.cell_hi
        if c1 == c0:
            return False
        fe = self.cell_edges[c0:c1]
        ft = self.cell_tails[c0:c1]
        fh = self.cell_heads[c0:c1]
        frac = phi_flat[fe]
        t_tail = t_flat[ft]
        dadr_tail = dadr_flat[ft]
        carries = frac > phi_positive_tol
        uphill = (
            self.cell_g_tail[c0:c1] * dadr_tail
            <= self.cell_g_head[c0:c1] * dadr_flat[fh]
        )
        movable = t_tail > 0.0
        threshold = (eta / np.where(movable, t_tail, 1.0)) * (
            delta_flat[fe] - dadr_tail
        )
        improper = carries & uphill & movable & (frac >= threshold)
        if not improper.any():
            return False

        tags = np.zeros(self.num_commodities * self.num_nodes, dtype=bool)
        for _nodes, _edges, _raw, tails, heads, _g, _c, _S, cell_pos in plans.reverse:
            pos = cell_pos - c0
            contrib = improper[pos] | (carries[pos] & tags[heads])
            np.logical_or.at(tags, tails, contrib)
        blocked_flat[fe] = (frac <= phi_zero_tol) & tags[fh]
        return bool(blocked_flat[fe].any())
