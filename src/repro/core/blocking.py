"""Blocked sets ``B_i(j)`` and tag propagation (paper, Section 5, eq. (18)).

The update map ``Gamma`` must not increase a routing fraction ``phi_ik(j)``
from zero when doing so could create a routing loop or route toward a region
whose marginal costs are momentarily inverted.  Following Gallager's
construction, a node ``k`` is *blocked* relative to destination ``j`` if some
routing path from ``k`` to ``j`` contains an **improper link** ``(l, m)``:

* ``phi_lm(j) > 0``                                  (the link carries flow),
* ``g_l(j) * dA/dr_l(j) <= g_m(j) * dA/dr_m(j)``      (it points "uphill"), and
* ``phi_lm(j) >= (eta / t_l(j)) * (delta_lm(j) - dA/dr_l(j))``  (eq. (18):
  the update cannot zero it out this iteration).

Note the node potentials ``g`` in the second condition: the paper states the
test as ``dA/dr_l <= dA/dr_m`` (Gallager's original, where flow is conserved
and the marginal cost per unit decreases monotonically toward the sink).
With shrinkage (``beta < 1``) a unit at the downstream node represents *more*
source data than a unit upstream, so per-local-unit marginals legitimately
rise across shrinking operators and the verbatim test misfires, permanently
blocking optimal edges (we reproduce this failure in the test suite).
Comparing in source-equivalent units -- scaling each node's marginal by its
cumulative gain ``g`` -- restores the monotone potential Gallager's argument
needs and reduces to the paper's condition whenever ``beta == 1``.  Recorded
as deviation D1 in DESIGN.md.

The distributed protocol realises this with a one-bit *tag* piggybacked on
the marginal-cost broadcast: a node tags its broadcast if one of its own
out-links is improper or if any positive-``phi`` downstream neighbour's
broadcast was tagged; hence tags flood upstream.  ``B_i(j)`` is then the set
of neighbours ``k`` with ``phi_ik(j) = 0`` whose broadcast arrived tagged.

The synchronous implementation below computes exactly the tags that protocol
would deliver (the message-passing version lives in
:mod:`repro.simulation.agent` and is tested to agree).
"""

from __future__ import annotations

import numpy as np

from repro.core.routing import RoutingState
from repro.core.transform import ExtendedNetwork

__all__ = ["improper_links", "node_tags", "compute_blocked_sets"]


def improper_links(
    ext: ExtendedNetwork,
    j: int,
    routing: RoutingState,
    traffic: np.ndarray,
    dadr: np.ndarray,
    delta: np.ndarray,
    eta: float,
    phi_positive_tol: float = 1e-12,
) -> np.ndarray:
    """Boolean mask over edges: is edge ``e`` an improper link for commodity ``j``?

    Implements the three conditions above.  A tail with ``t_l(j) = 0`` can
    always zero the link in one update (``Delta = phi``), so such links are
    never improper.
    """
    phi = routing.phi[j]
    g = ext.node_potentials[j]
    improper = np.zeros(ext.num_edges, dtype=bool)
    for e in ext.commodities[j].edge_indices:
        frac = phi[e]
        if frac <= phi_positive_tol:
            continue
        tail = ext.edge_tail[e]
        head = ext.edge_head[e]
        if g[tail] * dadr[tail] > g[head] * dadr[head]:
            continue
        t_tail = traffic[j, tail]
        if t_tail <= 0.0:
            continue  # the update can fully remove this link's fraction
        threshold = (eta / t_tail) * (delta[e] - dadr[tail])
        if frac >= threshold:
            improper[e] = True
    return improper


def node_tags(
    ext: ExtendedNetwork,
    j: int,
    routing: RoutingState,
    improper: np.ndarray,
    phi_positive_tol: float = 1e-12,
) -> np.ndarray:
    """Propagate tags upstream: ``tag[l]`` iff some routing path from ``l`` to
    the sink crosses an improper link.

    Computed in reverse topological order of the commodity DAG, mirroring the
    upstream broadcast wave of the protocol.
    """
    view = ext.commodities[j]
    phi = routing.phi[j]
    tags = np.zeros(ext.num_nodes, dtype=bool)
    out_lists = ext.commodity_out_edges[j]
    for node in reversed(view.topo_order):
        if node == view.sink:
            continue
        tagged = False
        for e in out_lists[node]:
            if improper[e]:
                tagged = True
                break
            if phi[e] > phi_positive_tol and tags[ext.edge_head[e]]:
                tagged = True
                break
        tags[node] = tagged
    return tags


def compute_blocked_sets(
    ext: ExtendedNetwork,
    j: int,
    routing: RoutingState,
    traffic: np.ndarray,
    dadr: np.ndarray,
    delta: np.ndarray,
    eta: float,
    phi_zero_tol: float = 1e-12,
) -> np.ndarray:
    """Boolean mask over edges: ``blocked[e]`` iff ``head(e) in B_tail(e)(j)``.

    A blocked edge must keep ``phi = 0`` in the coming update (eq. (14)).
    Only zero-``phi`` edges toward tagged heads are blocked -- edges already
    carrying flow are handled by the reduction rule instead.
    """
    improper = improper_links(ext, j, routing, traffic, dadr, delta, eta)
    tags = node_tags(ext, j, routing, improper)
    phi = routing.phi[j]
    blocked = np.zeros(ext.num_edges, dtype=bool)
    for e in ext.commodities[j].edge_indices:
        if phi[e] <= phi_zero_tol and tags[ext.edge_head[e]]:
            blocked[e] = True
    return blocked
