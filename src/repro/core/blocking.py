"""Blocked sets ``B_i(j)`` and tag propagation (paper, Section 5, eq. (18)).

The update map ``Gamma`` must not increase a routing fraction ``phi_ik(j)``
from zero when doing so could create a routing loop or route toward a region
whose marginal costs are momentarily inverted.  Following Gallager's
construction, a node ``k`` is *blocked* relative to destination ``j`` if some
routing path from ``k`` to ``j`` contains an **improper link** ``(l, m)``:

* ``phi_lm(j) > 0``                                  (the link carries flow),
* ``g_l(j) * dA/dr_l(j) <= g_m(j) * dA/dr_m(j)``      (it points "uphill"), and
* ``phi_lm(j) >= (eta / t_l(j)) * (delta_lm(j) - dA/dr_l(j))``  (eq. (18):
  the update cannot zero it out this iteration).

Note the node potentials ``g`` in the second condition: the paper states the
test as ``dA/dr_l <= dA/dr_m`` (Gallager's original, where flow is conserved
and the marginal cost per unit decreases monotonically toward the sink).
With shrinkage (``beta < 1``) a unit at the downstream node represents *more*
source data than a unit upstream, so per-local-unit marginals legitimately
rise across shrinking operators and the verbatim test misfires, permanently
blocking optimal edges (we reproduce this failure in the test suite).
Comparing in source-equivalent units -- scaling each node's marginal by its
cumulative gain ``g`` -- restores the monotone potential Gallager's argument
needs and reduces to the paper's condition whenever ``beta == 1``.  Recorded
as deviation D1 in DESIGN.md.

The distributed protocol realises this with a one-bit *tag* piggybacked on
the marginal-cost broadcast: a node tags its broadcast if one of its own
out-links is improper or if any positive-``phi`` downstream neighbour's
broadcast was tagged; hence tags flood upstream.  ``B_i(j)`` is then the set
of neighbours ``k`` with ``phi_ik(j) = 0`` whose broadcast arrived tagged.

The synchronous implementation below computes exactly the tags that protocol
would deliver (the message-passing version lives in
:mod:`repro.simulation.agent` and is tested to agree).
"""

from __future__ import annotations

import numpy as np

from repro.core.routing import RoutingState
from repro.core.transform import ExtendedNetwork

__all__ = [
    "improper_links",
    "node_tags",
    "compute_blocked_sets",
    "compute_all_blocked_sets",
    "compute_blocked_sets_scalar",
]


def improper_links(
    ext: ExtendedNetwork,
    j: int,
    routing: RoutingState,
    traffic: np.ndarray,
    dadr: np.ndarray,
    delta: np.ndarray,
    eta: float,
    phi_positive_tol: float = 1e-12,
) -> np.ndarray:
    """Boolean mask over edges: is edge ``e`` an improper link for commodity ``j``?

    Implements the three conditions above, vectorized over the commodity's
    allowed edge array.  A tail with ``t_l(j) = 0`` can always zero the link
    in one update (``Delta = phi``), so such links are never improper.
    """
    phi = routing.phi[j]
    g = ext.node_potentials[j]
    improper = np.zeros(ext.num_edges, dtype=bool)
    edges = ext.commodity_edge_arrays[j]
    if edges.size == 0:
        return improper
    tails = ext.edge_tail[edges]
    heads = ext.edge_head[edges]
    frac = phi[edges]
    t_tail = traffic[j, tails]
    # identical comparisons to the scalar reference, all-at-once
    carries = frac > phi_positive_tol
    uphill = g[tails] * dadr[tails] <= g[heads] * dadr[heads]
    movable = t_tail > 0.0
    threshold = (eta / np.where(movable, t_tail, 1.0)) * (delta[edges] - dadr[tails])
    improper[edges] = carries & uphill & movable & (frac >= threshold)
    return improper


def node_tags(
    ext: ExtendedNetwork,
    j: int,
    routing: RoutingState,
    improper: np.ndarray,
    phi_positive_tol: float = 1e-12,
) -> np.ndarray:
    """Propagate tags upstream: ``tag[l]`` iff some routing path from ``l`` to
    the sink crosses an improper link.

    Runs the commodity's flow-plan blocks backward -- the same reverse
    topological wave the protocol's upstream broadcast performs, one
    ``np.logical_or`` scatter per level instead of a Python loop per edge.
    """
    plan = ext.flow_plans[j]
    phi = routing.phi[j]
    tags = np.zeros(ext.num_nodes, dtype=bool)
    edges, tails, heads, offsets = plan.edges, plan.tails, plan.heads, plan.offsets
    for b in range(len(offsets) - 1, 0, -1):
        s, e = offsets[b - 1], offsets[b]
        ee = edges[s:e]
        contrib = improper[ee] | ((phi[ee] > phi_positive_tol) & tags[heads[s:e]])
        np.logical_or.at(tags, tails[s:e], contrib)
    return tags


def compute_blocked_sets(
    ext: ExtendedNetwork,
    j: int,
    routing: RoutingState,
    traffic: np.ndarray,
    dadr: np.ndarray,
    delta: np.ndarray,
    eta: float,
    phi_zero_tol: float = 1e-12,
) -> np.ndarray:
    """Boolean mask over edges: ``blocked[e]`` iff ``head(e) in B_tail(e)(j)``.

    A blocked edge must keep ``phi = 0`` in the coming update (eq. (14)).
    Only zero-``phi`` edges toward tagged heads are blocked -- edges already
    carrying flow are handled by the reduction rule instead.
    """
    improper = improper_links(ext, j, routing, traffic, dadr, delta, eta)
    tags = node_tags(ext, j, routing, improper)
    phi = routing.phi[j]
    blocked = np.zeros(ext.num_edges, dtype=bool)
    edges = ext.commodity_edge_arrays[j]
    if edges.size:
        blocked[edges] = (phi[edges] <= phi_zero_tol) & tags[ext.edge_head[edges]]
    return blocked


def compute_all_blocked_sets(
    ext: ExtendedNetwork,
    routing: RoutingState,
    traffic: np.ndarray,
    dadr: np.ndarray,
    delta: np.ndarray,
    eta: float,
    phi_zero_tol: float = 1e-12,
    phi_positive_tol: float = 1e-12,
) -> np.ndarray:
    """:func:`compute_blocked_sets` for every commodity in one pass: ``(J, E)``.

    Flattens the commodities' disjoint index spaces (node ``j*V + v``, edge
    ``j*E + e``) so the improper-link test is a single vector comparison and
    the tag flood is one cross-commodity reverse wave.  Row ``j`` is
    elementwise identical to the per-commodity function.  ``dadr`` and
    ``delta`` are the stacked ``(J, V)`` / ``(J, E)`` arrays.
    """
    mel = ext.merged_edge_list
    num_flat_edges = ext.num_commodities * ext.num_edges
    phi_flat = routing.phi.reshape(-1)
    t_flat = traffic.reshape(-1)
    dadr_flat = dadr.reshape(-1)
    delta_flat = delta.reshape(-1)

    blocked = np.zeros((ext.num_commodities, ext.num_edges), dtype=bool)
    fe, ft, fh = mel.edges, mel.tails, mel.heads
    if fe.size == 0:
        return blocked

    frac = phi_flat[fe]
    t_tail = t_flat[ft]
    dadr_tail = dadr_flat[ft]
    carries = frac > phi_positive_tol
    uphill = mel.g_tails * dadr_tail <= mel.g_heads * dadr_flat[fh]
    movable = t_tail > 0.0
    threshold = (eta / np.where(movable, t_tail, 1.0)) * (
        delta_flat[fe] - dadr_tail
    )
    improper_vals = carries & uphill & movable & (frac >= threshold)
    if not improper_vals.any():
        # no improper link anywhere => no tag can flood => nothing is blocked
        return blocked

    # per-level positions into the merged edge list let the flood reuse the
    # masks already computed above instead of scattering them dense and
    # re-gathering (plus re-testing phi) at every level
    cached = getattr(ext, "_reverse_level_mel_pos", None)
    if cached is None:
        lookup = np.empty(num_flat_edges, dtype=np.intp)
        lookup[fe] = np.arange(fe.size)
        level_pos = [
            lookup[edges] for edges, *_rest in ext.merged_reverse_plan.levels
        ]
        mel_level = np.empty(fe.size, dtype=np.intp)
        for b, pos in enumerate(level_pos):
            mel_level[pos] = b
        cached = ext._reverse_level_mel_pos = (level_pos, mel_level)
    level_pos, mel_level = cached

    # tags are all-False until the first level holding an improper edge, so
    # every earlier level's flood pass is a no-op; start there
    first = int(mel_level[np.flatnonzero(improper_vals)].min())

    tags = np.zeros(ext.num_commodities * ext.num_nodes, dtype=bool)
    for (edges, _raw, tails, heads, _gains, _costs, _uh, unique_tails), pos in zip(
        ext.merged_reverse_plan.levels[first:], level_pos[first:]
    ):
        contrib = improper_vals[pos] | (carries[pos] & tags[heads])
        if unique_tails:
            tags[tails] |= contrib
        else:
            np.logical_or.at(tags, tails, contrib)

    blocked.reshape(-1)[fe] = (frac <= phi_zero_tol) & tags[fh]
    return blocked


def compute_blocked_sets_scalar(
    ext: ExtendedNetwork,
    j: int,
    routing: RoutingState,
    traffic: np.ndarray,
    dadr: np.ndarray,
    delta: np.ndarray,
    eta: float,
    phi_zero_tol: float = 1e-12,
    phi_positive_tol: float = 1e-12,
) -> np.ndarray:
    """Reference scalar implementation of :func:`compute_blocked_sets`.

    Pure-Python edge walk, kept as the ground truth the vectorized pipeline
    is asserted identical against in the property tests.
    """
    phi = routing.phi[j]
    g = ext.node_potentials[j]
    view = ext.commodities[j]

    improper = np.zeros(ext.num_edges, dtype=bool)
    for e in view.edge_indices:
        frac = phi[e]
        if frac <= phi_positive_tol:
            continue
        tail = ext.edge_tail[e]
        head = ext.edge_head[e]
        if g[tail] * dadr[tail] > g[head] * dadr[head]:
            continue
        t_tail = traffic[j, tail]
        if t_tail <= 0.0:
            continue  # the update can fully remove this link's fraction
        threshold = (eta / t_tail) * (delta[e] - dadr[tail])
        if frac >= threshold:
            improper[e] = True

    tags = np.zeros(ext.num_nodes, dtype=bool)
    out_lists = ext.commodity_out_edges[j]
    for node in reversed(view.topo_order):
        if node == view.sink:
            continue
        tagged = False
        for e in out_lists[node]:
            if improper[e]:
                tagged = True
                break
            if phi[e] > phi_positive_tol and tags[ext.edge_head[e]]:
                tagged = True
                break
        tags[node] = tagged

    blocked = np.zeros(ext.num_edges, dtype=bool)
    for e in view.edge_indices:
        if phi[e] <= phi_zero_tol and tags[ext.edge_head[e]]:
            blocked[e] = True
    return blocked
