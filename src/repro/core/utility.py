"""Concave utility functions ``U_j(a_j)`` for stream commodities.

The paper assumes each commodity ``j`` has an increasing concave utility
``U_j`` of its admitted rate ``a_j`` (Section 2, "Utility Function").  The
dummy-node transformation (Section 3, eq. (1)) only ever evaluates a utility
and its first derivative, so the interface below exposes exactly

* ``value(a)``       -- ``U(a)``
* ``derivative(a)``  -- ``U'(a)``

plus the convenience ``loss(lam, x) = U(lam) - U(lam - x)``, which is the cost
``Y`` of carrying overflow ``x`` on the dummy difference link.

All utilities are vectorised: they accept scalars or numpy arrays.

The linear utility with weight 1 recovers the paper's Figure-4 objective
("the system utility is taken to be the total throughput").
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Union

import numpy as np

from repro.exceptions import ValidationError

ArrayLike = Union[float, np.ndarray]

__all__ = [
    "UtilityFunction",
    "LinearUtility",
    "LogUtility",
    "AlphaFairUtility",
    "SqrtUtility",
    "CappedLinearUtility",
    "check_concave_increasing",
]


class UtilityFunction(ABC):
    """An increasing concave utility of an admitted data rate.

    Subclasses must be increasing and concave on ``a >= 0``; this is the
    standing assumption of the paper (it makes the dummy-link cost ``Y``
    convex and increasing, which the convergence results require).
    """

    @abstractmethod
    def value(self, a: ArrayLike) -> ArrayLike:
        """Return ``U(a)`` for admitted rate ``a >= 0``."""

    @abstractmethod
    def derivative(self, a: ArrayLike) -> ArrayLike:
        """Return ``U'(a)`` for admitted rate ``a >= 0``."""

    def loss(self, lam: ArrayLike, x: ArrayLike) -> ArrayLike:
        """Utility loss ``Y(x) = U(lam) - U(lam - x)`` of shedding rate ``x``.

        This is eq. (1) of the paper: the cost of routing overflow ``x`` over
        the dummy difference link when the offered load is ``lam``.
        """
        return self.value(lam) - self.value(np.asarray(lam) - np.asarray(x))

    def loss_derivative(self, lam: ArrayLike, x: ArrayLike) -> ArrayLike:
        """``Y'(x) = U'(lam - x)``, the marginal utility loss of shedding."""
        return self.derivative(np.asarray(lam) - np.asarray(x))

    def __call__(self, a: ArrayLike) -> ArrayLike:
        return self.value(a)


class LinearUtility(UtilityFunction):
    """``U(a) = weight * a`` -- throughput utility (paper's Figure 4)."""

    def __init__(self, weight: float = 1.0):
        if weight <= 0:
            raise ValidationError(f"linear utility weight must be > 0, got {weight}")
        self.weight = float(weight)

    def value(self, a: ArrayLike) -> ArrayLike:
        return self.weight * np.asarray(a, dtype=float)

    def derivative(self, a: ArrayLike) -> ArrayLike:
        return np.full_like(np.asarray(a, dtype=float), self.weight)

    def __repr__(self) -> str:
        return f"LinearUtility(weight={self.weight})"


class LogUtility(UtilityFunction):
    """``U(a) = weight * log(offset + a)`` -- proportional-fairness style.

    The ``offset`` (default 1) keeps the utility finite at ``a = 0``, which is
    required because the algorithm starts with *all* traffic shed (``a_j = 0``)
    and the dummy-link cost derivative ``U'(lam - x)`` must stay bounded as
    ``x -> lam``.
    """

    def __init__(self, weight: float = 1.0, offset: float = 1.0):
        if weight <= 0:
            raise ValidationError(f"log utility weight must be > 0, got {weight}")
        if offset <= 0:
            raise ValidationError(f"log utility offset must be > 0, got {offset}")
        self.weight = float(weight)
        self.offset = float(offset)

    def value(self, a: ArrayLike) -> ArrayLike:
        return self.weight * np.log(self.offset + np.asarray(a, dtype=float))

    def derivative(self, a: ArrayLike) -> ArrayLike:
        return self.weight / (self.offset + np.asarray(a, dtype=float))

    def __repr__(self) -> str:
        return f"LogUtility(weight={self.weight}, offset={self.offset})"


class AlphaFairUtility(UtilityFunction):
    """The alpha-fair family ``U(a) = w * (offset + a)^(1-alpha) / (1-alpha)``.

    ``alpha = 0`` is throughput, ``alpha -> 1`` is proportional fairness
    (handled by delegating to :class:`LogUtility`), ``alpha = 2`` is minimum
    potential delay fairness.  The ``offset`` keeps derivatives bounded at 0.
    """

    def __init__(self, alpha: float, weight: float = 1.0, offset: float = 1.0):
        if alpha < 0:
            raise ValidationError(f"alpha must be >= 0, got {alpha}")
        if weight <= 0:
            raise ValidationError(f"weight must be > 0, got {weight}")
        if offset < 0:
            raise ValidationError(f"offset must be >= 0, got {offset}")
        if offset == 0 and alpha >= 1:
            raise ValidationError("offset must be > 0 when alpha >= 1")
        self.alpha = float(alpha)
        self.weight = float(weight)
        self.offset = float(offset)
        self._log = (
            LogUtility(weight=weight, offset=offset)
            if math.isclose(alpha, 1.0)
            else None
        )

    def value(self, a: ArrayLike) -> ArrayLike:
        if self._log is not None:
            return self._log.value(a)
        base = self.offset + np.asarray(a, dtype=float)
        return self.weight * base ** (1.0 - self.alpha) / (1.0 - self.alpha)

    def derivative(self, a: ArrayLike) -> ArrayLike:
        if self._log is not None:
            return self._log.derivative(a)
        base = self.offset + np.asarray(a, dtype=float)
        return self.weight * base ** (-self.alpha)

    def __repr__(self) -> str:
        return (
            f"AlphaFairUtility(alpha={self.alpha}, weight={self.weight}, "
            f"offset={self.offset})"
        )


class SqrtUtility(UtilityFunction):
    """``U(a) = weight * sqrt(offset + a)`` -- a strictly concave benchmark."""

    def __init__(self, weight: float = 1.0, offset: float = 1.0):
        if weight <= 0:
            raise ValidationError(f"weight must be > 0, got {weight}")
        if offset <= 0:
            raise ValidationError(f"offset must be > 0, got {offset}")
        self.weight = float(weight)
        self.offset = float(offset)

    def value(self, a: ArrayLike) -> ArrayLike:
        return self.weight * np.sqrt(self.offset + np.asarray(a, dtype=float))

    def derivative(self, a: ArrayLike) -> ArrayLike:
        return 0.5 * self.weight / np.sqrt(self.offset + np.asarray(a, dtype=float))

    def __repr__(self) -> str:
        return f"SqrtUtility(weight={self.weight}, offset={self.offset})"


class CappedLinearUtility(UtilityFunction):
    """Linear up to a knee, then flat -- smoothed to stay concave & C^1.

    ``U(a) = weight * (a - softness * log(1 + exp((a - cap)/softness)))``
    approximates ``min(a, cap)``; useful for modelling queries whose value
    saturates beyond a target rate.  Increasing and concave for all ``a``.
    """

    def __init__(self, cap: float, weight: float = 1.0, softness: float = 0.1):
        if cap <= 0:
            raise ValidationError(f"cap must be > 0, got {cap}")
        if weight <= 0:
            raise ValidationError(f"weight must be > 0, got {weight}")
        if softness <= 0:
            raise ValidationError(f"softness must be > 0, got {softness}")
        self.cap = float(cap)
        self.weight = float(weight)
        self.softness = float(softness)

    def _softplus(self, z: ArrayLike) -> ArrayLike:
        # numerically stable softplus
        z = np.asarray(z, dtype=float)
        return np.logaddexp(0.0, z)

    def value(self, a: ArrayLike) -> ArrayLike:
        a = np.asarray(a, dtype=float)
        s = self.softness
        return self.weight * (a - s * self._softplus((a - self.cap) / s))

    def derivative(self, a: ArrayLike) -> ArrayLike:
        a = np.asarray(a, dtype=float)
        z = (a - self.cap) / self.softness
        sigmoid = 0.5 * (1.0 + np.tanh(z / 2.0))
        return self.weight * (1.0 - sigmoid)

    def __repr__(self) -> str:
        return (
            f"CappedLinearUtility(cap={self.cap}, weight={self.weight}, "
            f"softness={self.softness})"
        )


def check_concave_increasing(
    utility: UtilityFunction,
    lo: float = 0.0,
    hi: float = 100.0,
    num: int = 257,
    tol: float = 1e-9,
) -> None:
    """Numerically verify that ``utility`` is increasing and concave on [lo, hi].

    Raises :class:`ValidationError` on violation.  Used by model validation to
    reject user-supplied utilities that break the paper's standing assumption.
    """
    grid = np.linspace(lo, hi, num)
    values = np.asarray(utility.value(grid), dtype=float)
    derivs = np.asarray(utility.derivative(grid), dtype=float)
    if not np.all(np.isfinite(values)) or not np.all(np.isfinite(derivs)):
        raise ValidationError("utility produced non-finite values on test grid")
    if np.any(derivs < -tol):
        raise ValidationError("utility is not increasing (negative derivative)")
    if np.any(np.diff(values) < -tol):
        raise ValidationError("utility values decrease on test grid")
    # concavity: derivative must be non-increasing
    if np.any(np.diff(derivs) > tol):
        raise ValidationError("utility is not concave (derivative increases)")
    # derivative consistency: finite differences should match U'.  The
    # tolerance adapts to how much the derivative itself varies across each
    # cell, so sharply-kneed (but correct) utilities pass while a derivative
    # that disagrees with the values is still caught.
    mid = 0.5 * (grid[:-1] + grid[1:])
    fd = np.diff(values) / np.diff(grid)
    md = np.asarray(utility.derivative(mid), dtype=float)
    local_variation = np.abs(derivs[1:] - derivs[:-1])
    scale = max(1.0, float(np.max(np.abs(md))))
    if np.any(np.abs(fd - md) > 1e-2 * scale + local_variation):
        raise ValidationError("utility derivative inconsistent with finite differences")
