"""Cost model and marginal-cost computations (paper eqs. (8)-(13)).

The transformed objective (Section 3) is ``A = Y + eps * D``:

* ``Y`` -- total utility loss over the dummy difference links, eq. (1);
* ``D`` -- total barrier penalty of node resource usage;
* ``eps`` -- the tunable penalty coefficient (0.2 in the paper's Figure 4).

This module evaluates ``A`` and the three derivative objects the distributed
algorithm needs:

* ``dA_i/df_ik``     -- eq. (11), via :func:`link_cost_derivative`;
* ``dA/dr_i(j)``     -- eq. (9),  via :func:`marginal_cost_to_destination`;
* ``dA/dphi_ik(j)``  -- eq. (10), via :func:`phi_gradient`;

plus the optimality residuals of Theorem 2 (eqs. (12), (13)), which tests and
benchmarks use to certify convergence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.penalty import InverseBarrier, PenaltyFunction
from repro.core.routing import (
    RoutingState,
    admitted_rates,
    resource_usage,
    solve_traffic,
)
from repro.core.state import ModelState, use_array_core
from repro.core.transform import ExtendedNetwork

__all__ = [
    "CostModel",
    "CostBreakdown",
    "evaluate_cost",
    "link_cost_derivative",
    "marginal_cost_to_destination",
    "marginal_cost_to_destination_scalar",
    "all_marginal_costs",
    "edge_marginals",
    "all_edge_marginals",
    "phi_gradient",
    "OptimalityReport",
    "optimality_residual",
]


@dataclass
class CostModel:
    """The penalised objective ``A = Y + eps * D`` of Section 3.

    Parameters
    ----------
    penalty:
        Per-node convex penalty ``D_i``; the paper's canonical choice
        ``1/(C - z)`` is the default.
    eps:
        Penalty coefficient ``eps`` (Figure 4 uses 0.2).
    """

    penalty: PenaltyFunction = field(default_factory=InverseBarrier)
    eps: float = 0.2


@dataclass
class CostBreakdown:
    """Evaluated objective components for one routing state."""

    utility_loss: float  # Y: total utility loss over difference links
    penalty: float  # D: total (unscaled) barrier penalty
    total: float  # A = Y + eps * D
    utility: float  # sum_j U_j(a_j), the quantity the paper plots
    admitted: np.ndarray  # a_j per commodity
    shed: np.ndarray  # lambda_j - a_j per commodity


def evaluate_cost(
    ext: ExtendedNetwork,
    routing: RoutingState,
    cost_model: CostModel,
    traffic: Optional[np.ndarray] = None,
    usage: Optional[tuple] = None,
) -> CostBreakdown:
    """Evaluate ``A``, its components, and the achieved utility.

    ``traffic`` and ``usage`` (an ``(edge_usage, node_usage)`` pair) accept
    precomputed values so callers holding an
    :class:`repro.core.context.IterationContext` never re-solve the flow
    balance.
    """
    if traffic is None:
        traffic = solve_traffic(ext, routing)
    if usage is None:
        usage = resource_usage(ext, routing, traffic)
    edge_usage, node_usage = usage
    admitted = admitted_rates(ext, routing, traffic)

    # Y is a function of the *difference-link usage* (eq. (8)): at a valid
    # routing this equals lambda_j - a_j, but keeping the dependence on the
    # actual link flow makes A a differentiable function of each phi
    # coordinate independently, which eqs. (9)-(11) (and the
    # finite-difference tests) rely on.
    max_rates = ext.commodity_max_rates
    clipped = np.minimum(np.maximum(admitted, 0.0), max_rates)
    shed = max_rates - clipped
    shed_flows = edge_usage[ext.commodity_difference_edges]
    # U_j(lambda_j) never changes; cache it on the network
    utility_at_max = getattr(ext, "_utility_at_max", None)
    if utility_at_max is None:
        utility_at_max = np.array(
            [float(v.utility.value(v.max_rate)) for v in ext.commodities]
        )
        ext._utility_at_max = utility_at_max
    utility_loss = 0.0
    utility = 0.0
    weights = _linear_utility_weights(ext)
    if weights is not None:
        # throughput utilities (the paper's default): U_j(a) = w_j * a.  The
        # elementwise products equal the per-commodity scalar calls bit for
        # bit; the Python accumulation below keeps the same summation order.
        u_vals = weights * clipped
        l_vals = weights * np.maximum(max_rates - shed_flows, 0.0)
        for j in range(ext.num_commodities):
            utility += float(u_vals[j])
            utility_loss += utility_at_max[j] - float(l_vals[j])
    else:
        for view in ext.commodities:
            j = view.index
            utility += float(view.utility.value(clipped[j]))
            utility_loss += utility_at_max[j] - float(
                view.utility.value(max(max_rates[j] - shed_flows[j], 0.0))
            )

    penalty = float(np.sum(cost_model.penalty.value(node_usage, ext.capacity)))
    total = utility_loss + cost_model.eps * penalty
    return CostBreakdown(utility_loss, penalty, total, utility, admitted, shed)


def _linear_utility_weights(ext: ExtendedNetwork):
    """``(J,)`` weights if every commodity's utility is a plain
    :class:`~repro.core.utility.LinearUtility`, else ``None`` (cached).

    Linear utilities let the hot cost/derivative paths replace per-commodity
    scalar calls with one elementwise product -- bit-identical because the
    scalar calls compute exactly ``weight * a`` (and a constant derivative).
    """
    weights = getattr(ext, "_linear_utility_weights", False)
    if weights is False:
        from repro.core.utility import LinearUtility

        if all(type(v.utility) is LinearUtility for v in ext.commodities):
            weights = np.array([v.utility.weight for v in ext.commodities])
        else:
            weights = None
        ext._linear_utility_weights = weights
    return weights


def link_cost_derivative(
    ext: ExtendedNetwork,
    cost_model: CostModel,
    edge_usage: np.ndarray,
    node_usage: np.ndarray,
) -> np.ndarray:
    """Eq. (11): ``dA_i/df_ik`` for every extended edge.

    For the dummy difference link of commodity ``j`` this is the marginal
    utility loss ``U_j'(lambda_j - f)``; for every other edge it is the
    (eps-scaled) penalty derivative ``eps * D_i'(f_i)`` at the tail node.
    Dummy and sink nodes have infinite capacity, hence zero penalty term.
    """
    node_term = cost_model.eps * np.asarray(
        cost_model.penalty.derivative(node_usage, ext.capacity), dtype=float
    )
    dadf = node_term[ext.edge_tail]
    weights = _linear_utility_weights(ext)
    if weights is not None:
        # U_j'(.) == w_j regardless of the remaining rate
        dadf[ext.commodity_difference_edges] = weights
        return dadf
    for view in ext.commodities:
        e = view.difference_edge
        remaining = max(view.max_rate - float(edge_usage[e]), 0.0)
        dadf[e] = float(view.utility.derivative(remaining))
    return dadf


def marginal_cost_to_destination(
    ext: ExtendedNetwork,
    j: int,
    routing: RoutingState,
    dadf: np.ndarray,
) -> np.ndarray:
    """Eq. (9): ``dA/dr_i(j)`` for every node, for one commodity.

    Computed in reverse topological order of the commodity DAG with the
    boundary condition ``dA/dr_j(j) = 0`` at the sink -- exactly the
    information wave the distributed protocol propagates upstream.
    Nodes outside the commodity subgraph get 0.

    Runs the commodity's :class:`~repro.core.transform.CommodityFlowPlan`
    blocks *backward*: per block, per-edge contributions from already-final
    downstream values, scattered into the tails with an ordered
    ``np.add.at`` -- bit identical to
    :func:`marginal_cost_to_destination_scalar`.
    """
    plan = ext.flow_plans[j]
    pj = routing.phi[j]
    dadr = np.zeros(ext.num_nodes, dtype=float)
    edges, tails, heads = plan.edges, plan.tails, plan.heads
    gains, costs, offsets = plan.gains, plan.costs, plan.offsets
    for b in range(len(offsets) - 1, 0, -1):
        s, e = offsets[b - 1], offsets[b]
        ee = edges[s:e]
        contrib = pj[ee] * (dadf[ee] * costs[s:e] + gains[s:e] * dadr[heads[s:e]])
        np.add.at(dadr, tails[s:e], contrib)
    return dadr


def marginal_cost_to_destination_scalar(
    ext: ExtendedNetwork,
    j: int,
    routing: RoutingState,
    dadf: np.ndarray,
) -> np.ndarray:
    """Reference scalar implementation of :func:`marginal_cost_to_destination`."""
    view = ext.commodities[j]
    phi = routing.phi
    dadr = np.zeros(ext.num_nodes, dtype=float)
    out_lists = ext.commodity_out_edges[j]
    for node in reversed(view.topo_order):
        if node == view.sink:
            continue
        acc = 0.0
        for e in out_lists[node]:
            frac = phi[j, e]
            if frac != 0.0:
                acc += frac * (
                    dadf[e] * ext.cost[j, e]
                    + ext.gain[j, e] * dadr[ext.edge_head[e]]
                )
        dadr[node] = acc
    return dadr


def all_marginal_costs(
    ext: ExtendedNetwork, routing: RoutingState, dadf: np.ndarray
) -> np.ndarray:
    """``dA/dr`` for all commodities: shape ``(J, V)``.

    One cross-commodity reverse wave over the merged levels of
    :class:`~repro.core.transform.MergedWavePlan`: the commodities' flattened
    index spaces are disjoint, so a single ordered scatter per level yields
    each row bit-identical to :func:`marginal_cost_to_destination`.

    Under the array core (the default) the wave runs as CSR mat-vec sweeps
    over :class:`repro.core.state.ModelState`'s height levels -- same
    contributions in the same order, still bit identical.
    """
    phi_flat = routing.phi.reshape(-1)
    if use_array_core():
        return ModelState.of(ext).marginal_costs(phi_flat, dadf)
    dadr = np.zeros((ext.num_commodities, ext.num_nodes), dtype=float)
    dadr_flat = dadr.reshape(-1)
    for edges, raw, tails, heads, gains, costs, _uh, unique_tails in (
        ext.merged_reverse_plan.levels
    ):
        contrib = phi_flat[edges] * (
            dadf[raw] * costs + gains * dadr_flat[heads]
        )
        if unique_tails:
            dadr_flat[tails] += contrib
        else:
            np.add.at(dadr_flat, tails, contrib)
    return dadr


def edge_marginals(
    ext: ExtendedNetwork, j: int, dadf: np.ndarray, dadr: np.ndarray
) -> np.ndarray:
    """Per-edge marginal cost ``delta_e(j) = dA_i/df_e * c_e(j) + beta_e(j) * dA/dr_head(j)``.

    This is the bracketed quantity in eqs. (9), (10), (15): the marginal cost
    of pushing one more unit of commodity ``j`` through edge ``e``.  Only
    meaningful on the commodity's allowed edges.
    """
    return dadf * ext.cost[j] + ext.gain[j] * dadr[ext.edge_head]


def all_edge_marginals(
    ext: ExtendedNetwork, dadf: np.ndarray, dadr: np.ndarray
) -> np.ndarray:
    """:func:`edge_marginals` for all commodities at once: ``(J, E)``.

    ``dadr`` is the stacked ``(J, V)`` marginal-cost array.  Row ``j`` is
    elementwise identical to ``edge_marginals(ext, j, dadf, dadr[j])``.
    """
    return dadf[None, :] * ext.cost + ext.gain * dadr[:, ext.edge_head]


def phi_gradient(
    ext: ExtendedNetwork,
    routing: RoutingState,
    traffic: Optional[np.ndarray] = None,
    cost_model: Optional[CostModel] = None,
) -> np.ndarray:
    """Eq. (10): the full gradient ``dA/dphi`` as a ``(J, E)`` array."""
    if cost_model is None:
        cost_model = CostModel()
    if traffic is None:
        traffic = solve_traffic(ext, routing)
    edge_usage, node_usage = resource_usage(ext, routing, traffic)
    dadf = link_cost_derivative(ext, cost_model, edge_usage, node_usage)
    grad = np.zeros_like(routing.phi)
    for view in ext.commodities:
        j = view.index
        dadr = marginal_cost_to_destination(ext, j, routing, dadf)
        delta = edge_marginals(ext, j, dadf, dadr)
        grad[j] = traffic[j, ext.edge_tail] * delta * ext.allowed[j]
    return grad


@dataclass
class OptimalityReport:
    """Residuals of Theorem 2's optimality conditions at a routing state.

    ``equal_residual`` measures violation of the necessary condition
    (eq. (12)): among edges actually carrying flow at a node, all marginal
    costs must equal the nodewise minimum.  ``sufficient_residual`` measures
    violation of the sufficient condition (eq. (13)):
    ``delta_e(j) >= dA/dr_i(j)`` for every allowed out-edge.  Both are
    normalised by the magnitude of the marginals involved; a state is
    (numerically) optimal when both are ~0.
    """

    equal_residual: float
    sufficient_residual: float
    per_commodity_equal: List[float]
    per_commodity_sufficient: List[float]

    def satisfied(self, tol: float = 1e-3) -> bool:
        return self.equal_residual <= tol and self.sufficient_residual <= tol


def optimality_residual(
    ext: ExtendedNetwork,
    routing: RoutingState,
    cost_model: Optional[CostModel] = None,
    traffic_threshold: float = 1e-9,
    phi_threshold: float = 1e-6,
    context=None,
) -> OptimalityReport:
    """Evaluate how far a routing state is from satisfying Theorem 2.

    ``context`` optionally supplies a precomputed
    :class:`repro.core.context.IterationContext` for ``routing`` so the flow
    balance and the marginal wave are not solved again.
    """
    if context is not None and context.dadf is not None:
        traffic = context.traffic
        dadf = context.dadf
    else:
        if cost_model is None:
            cost_model = CostModel()
        traffic = solve_traffic(ext, routing)
        edge_usage, node_usage = resource_usage(ext, routing, traffic)
        dadf = link_cost_derivative(ext, cost_model, edge_usage, node_usage)

    per_equal: List[float] = []
    per_sufficient: List[float] = []
    for view in ext.commodities:
        j = view.index
        if context is not None and context.dadr is not None:
            # a parallel-backend context carries dadf but not the stacked
            # derivative arrays; fall through to the per-commodity wave then
            dadr = context.dadr[j]
            delta = context.delta[j]
        else:
            dadr = marginal_cost_to_destination(ext, j, routing, dadf)
            delta = edge_marginals(ext, j, dadf, dadr)
        worst_equal = 0.0
        worst_sufficient = 0.0
        for node in view.node_indices:
            if node == view.sink or traffic[j, node] <= traffic_threshold:
                continue
            out = ext.commodity_out_edges[j][node]
            if not out:
                continue
            deltas = delta[out]
            scale = max(1.0, float(np.max(np.abs(deltas))))
            best = float(deltas.min())
            active = [e for e in out if routing.phi[j, e] > phi_threshold]
            if active:
                spread = float(max(delta[e] for e in active) - best) / scale
                worst_equal = max(worst_equal, spread)
            shortfall = float(dadr[node] - best) / scale
            worst_sufficient = max(worst_sufficient, max(0.0, shortfall))
        per_equal.append(worst_equal)
        per_sufficient.append(worst_sufficient)

    return OptimalityReport(
        equal_residual=max(per_equal) if per_equal else 0.0,
        sufficient_residual=max(per_sufficient) if per_sufficient else 0.0,
        per_commodity_equal=per_equal,
        per_commodity_sufficient=per_sufficient,
    )
