"""Cost model and marginal-cost computations (paper eqs. (8)-(13)).

The transformed objective (Section 3) is ``A = Y + eps * D``:

* ``Y`` -- total utility loss over the dummy difference links, eq. (1);
* ``D`` -- total barrier penalty of node resource usage;
* ``eps`` -- the tunable penalty coefficient (0.2 in the paper's Figure 4).

This module evaluates ``A`` and the three derivative objects the distributed
algorithm needs:

* ``dA_i/df_ik``     -- eq. (11), via :func:`link_cost_derivative`;
* ``dA/dr_i(j)``     -- eq. (9),  via :func:`marginal_cost_to_destination`;
* ``dA/dphi_ik(j)``  -- eq. (10), via :func:`phi_gradient`;

plus the optimality residuals of Theorem 2 (eqs. (12), (13)), which tests and
benchmarks use to certify convergence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.penalty import InverseBarrier, PenaltyFunction
from repro.core.routing import (
    RoutingState,
    admitted_rates,
    resource_usage,
    solve_traffic,
)
from repro.core.transform import ExtendedNetwork

__all__ = [
    "CostModel",
    "CostBreakdown",
    "evaluate_cost",
    "link_cost_derivative",
    "marginal_cost_to_destination",
    "all_marginal_costs",
    "edge_marginals",
    "phi_gradient",
    "OptimalityReport",
    "optimality_residual",
]


@dataclass
class CostModel:
    """The penalised objective ``A = Y + eps * D`` of Section 3.

    Parameters
    ----------
    penalty:
        Per-node convex penalty ``D_i``; the paper's canonical choice
        ``1/(C - z)`` is the default.
    eps:
        Penalty coefficient ``eps`` (Figure 4 uses 0.2).
    """

    penalty: PenaltyFunction = field(default_factory=InverseBarrier)
    eps: float = 0.2


@dataclass
class CostBreakdown:
    """Evaluated objective components for one routing state."""

    utility_loss: float  # Y: total utility loss over difference links
    penalty: float  # D: total (unscaled) barrier penalty
    total: float  # A = Y + eps * D
    utility: float  # sum_j U_j(a_j), the quantity the paper plots
    admitted: np.ndarray  # a_j per commodity
    shed: np.ndarray  # lambda_j - a_j per commodity


def evaluate_cost(
    ext: ExtendedNetwork,
    routing: RoutingState,
    cost_model: CostModel,
    traffic: Optional[np.ndarray] = None,
) -> CostBreakdown:
    """Evaluate ``A``, its components, and the achieved utility."""
    if traffic is None:
        traffic = solve_traffic(ext, routing)
    edge_usage, node_usage = resource_usage(ext, routing, traffic)
    admitted = admitted_rates(ext, routing, traffic)

    # Y is a function of the *difference-link usage* (eq. (8)): at a valid
    # routing this equals lambda_j - a_j, but keeping the dependence on the
    # actual link flow makes A a differentiable function of each phi
    # coordinate independently, which eqs. (9)-(11) (and the
    # finite-difference tests) rely on.
    utility_loss = 0.0
    utility = 0.0
    shed = np.empty(ext.num_commodities, dtype=float)
    for view in ext.commodities:
        a = float(np.clip(admitted[view.index], 0.0, view.max_rate))
        shed_flow = float(edge_usage[view.difference_edge])
        shed[view.index] = view.max_rate - a
        utility += float(view.utility.value(a))
        utility_loss += float(
            view.utility.value(view.max_rate)
            - view.utility.value(max(view.max_rate - shed_flow, 0.0))
        )

    penalty = float(np.sum(cost_model.penalty.value(node_usage, ext.capacity)))
    total = utility_loss + cost_model.eps * penalty
    return CostBreakdown(utility_loss, penalty, total, utility, admitted, shed)


def link_cost_derivative(
    ext: ExtendedNetwork,
    cost_model: CostModel,
    edge_usage: np.ndarray,
    node_usage: np.ndarray,
) -> np.ndarray:
    """Eq. (11): ``dA_i/df_ik`` for every extended edge.

    For the dummy difference link of commodity ``j`` this is the marginal
    utility loss ``U_j'(lambda_j - f)``; for every other edge it is the
    (eps-scaled) penalty derivative ``eps * D_i'(f_i)`` at the tail node.
    Dummy and sink nodes have infinite capacity, hence zero penalty term.
    """
    node_term = cost_model.eps * np.asarray(
        cost_model.penalty.derivative(node_usage, ext.capacity), dtype=float
    )
    dadf = node_term[ext.edge_tail]
    for view in ext.commodities:
        e = view.difference_edge
        remaining = max(view.max_rate - float(edge_usage[e]), 0.0)
        dadf[e] = float(view.utility.derivative(remaining))
    return dadf


def marginal_cost_to_destination(
    ext: ExtendedNetwork,
    j: int,
    routing: RoutingState,
    dadf: np.ndarray,
) -> np.ndarray:
    """Eq. (9): ``dA/dr_i(j)`` for every node, for one commodity.

    Computed in reverse topological order of the commodity DAG with the
    boundary condition ``dA/dr_j(j) = 0`` at the sink -- exactly the
    information wave the distributed protocol propagates upstream.
    Nodes outside the commodity subgraph get 0.
    """
    view = ext.commodities[j]
    phi = routing.phi
    dadr = np.zeros(ext.num_nodes, dtype=float)
    out_lists = ext.commodity_out_edges[j]
    for node in reversed(view.topo_order):
        if node == view.sink:
            continue
        acc = 0.0
        for e in out_lists[node]:
            frac = phi[j, e]
            if frac != 0.0:
                acc += frac * (
                    dadf[e] * ext.cost[j, e]
                    + ext.gain[j, e] * dadr[ext.edge_head[e]]
                )
        dadr[node] = acc
    return dadr


def all_marginal_costs(
    ext: ExtendedNetwork, routing: RoutingState, dadf: np.ndarray
) -> np.ndarray:
    """``dA/dr`` for all commodities: shape ``(J, V)``."""
    return np.stack(
        [
            marginal_cost_to_destination(ext, j, routing, dadf)
            for j in range(ext.num_commodities)
        ]
    )


def edge_marginals(
    ext: ExtendedNetwork, j: int, dadf: np.ndarray, dadr: np.ndarray
) -> np.ndarray:
    """Per-edge marginal cost ``delta_e(j) = dA_i/df_e * c_e(j) + beta_e(j) * dA/dr_head(j)``.

    This is the bracketed quantity in eqs. (9), (10), (15): the marginal cost
    of pushing one more unit of commodity ``j`` through edge ``e``.  Only
    meaningful on the commodity's allowed edges.
    """
    return dadf * ext.cost[j] + ext.gain[j] * dadr[ext.edge_head]


def phi_gradient(
    ext: ExtendedNetwork,
    routing: RoutingState,
    traffic: Optional[np.ndarray] = None,
    cost_model: Optional[CostModel] = None,
) -> np.ndarray:
    """Eq. (10): the full gradient ``dA/dphi`` as a ``(J, E)`` array."""
    if cost_model is None:
        cost_model = CostModel()
    if traffic is None:
        traffic = solve_traffic(ext, routing)
    edge_usage, node_usage = resource_usage(ext, routing, traffic)
    dadf = link_cost_derivative(ext, cost_model, edge_usage, node_usage)
    grad = np.zeros_like(routing.phi)
    for view in ext.commodities:
        j = view.index
        dadr = marginal_cost_to_destination(ext, j, routing, dadf)
        delta = edge_marginals(ext, j, dadf, dadr)
        grad[j] = traffic[j, ext.edge_tail] * delta * ext.allowed[j]
    return grad


@dataclass
class OptimalityReport:
    """Residuals of Theorem 2's optimality conditions at a routing state.

    ``equal_residual`` measures violation of the necessary condition
    (eq. (12)): among edges actually carrying flow at a node, all marginal
    costs must equal the nodewise minimum.  ``sufficient_residual`` measures
    violation of the sufficient condition (eq. (13)):
    ``delta_e(j) >= dA/dr_i(j)`` for every allowed out-edge.  Both are
    normalised by the magnitude of the marginals involved; a state is
    (numerically) optimal when both are ~0.
    """

    equal_residual: float
    sufficient_residual: float
    per_commodity_equal: List[float]
    per_commodity_sufficient: List[float]

    def satisfied(self, tol: float = 1e-3) -> bool:
        return self.equal_residual <= tol and self.sufficient_residual <= tol


def optimality_residual(
    ext: ExtendedNetwork,
    routing: RoutingState,
    cost_model: Optional[CostModel] = None,
    traffic_threshold: float = 1e-9,
    phi_threshold: float = 1e-6,
) -> OptimalityReport:
    """Evaluate how far a routing state is from satisfying Theorem 2."""
    if cost_model is None:
        cost_model = CostModel()
    traffic = solve_traffic(ext, routing)
    edge_usage, node_usage = resource_usage(ext, routing, traffic)
    dadf = link_cost_derivative(ext, cost_model, edge_usage, node_usage)

    per_equal: List[float] = []
    per_sufficient: List[float] = []
    for view in ext.commodities:
        j = view.index
        dadr = marginal_cost_to_destination(ext, j, routing, dadf)
        delta = edge_marginals(ext, j, dadf, dadr)
        worst_equal = 0.0
        worst_sufficient = 0.0
        for node in view.node_indices:
            if node == view.sink or traffic[j, node] <= traffic_threshold:
                continue
            out = ext.commodity_out_edges[j][node]
            if not out:
                continue
            deltas = delta[out]
            scale = max(1.0, float(np.max(np.abs(deltas))))
            best = float(deltas.min())
            active = [e for e in out if routing.phi[j, e] > phi_threshold]
            if active:
                spread = float(max(delta[e] for e in active) - best) / scale
                worst_equal = max(worst_equal, spread)
            shortfall = float(dadr[node] - best) / scale
            worst_sufficient = max(worst_sufficient, max(0.0, shortfall))
        per_equal.append(worst_equal)
        per_sufficient.append(worst_sufficient)

    return OptimalityReport(
        equal_residual=max(per_equal) if per_equal else 0.0,
        sufficient_residual=max(per_sufficient) if per_sufficient else 0.0,
        per_commodity_equal=per_equal,
        per_commodity_sufficient=per_sufficient,
    )
