"""Solution objects returned by all solvers and algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.marginals import CostModel, evaluate_cost
from repro.core.routing import (
    FeasibilityReport,
    RoutingState,
    feasibility_report,
    physical_link_flows,
    resource_usage,
    solve_traffic,
)
from repro.core.transform import ExtendedNetwork

__all__ = ["Solution", "build_solution"]


@dataclass
class Solution:
    """A complete answer to the joint admission/routing/allocation problem.

    Attributes
    ----------
    admitted:
        ``a_j`` per commodity (same order as ``ext.commodities``).
    utility:
        ``sum_j U_j(a_j)`` -- the paper's objective.
    cost:
        The penalised objective ``A = Y + eps * D`` (only meaningful for
        penalty-based methods; ``nan`` for the exact LP optimum).
    routing:
        The routing fractions realising the solution (``None`` for
        arc-flow-based centralized solutions that skip the phi form).
    method:
        Human-readable provenance ("gradient", "lp", "backpressure", ...).
    iterations:
        Iteration count for iterative methods.
    """

    ext: ExtendedNetwork
    admitted: np.ndarray
    utility: float
    cost: float
    method: str
    routing: Optional[RoutingState] = None
    iterations: Optional[int] = None
    extras: Dict[str, object] = field(default_factory=dict)

    @property
    def admitted_by_name(self) -> Dict[str, float]:
        return {
            view.name: float(self.admitted[view.index])
            for view in self.ext.commodities
        }

    @property
    def shed_by_name(self) -> Dict[str, float]:
        return {
            view.name: float(view.max_rate - self.admitted[view.index])
            for view in self.ext.commodities
        }

    def feasibility(self) -> Optional[FeasibilityReport]:
        if self.routing is None:
            return None
        return feasibility_report(self.ext, self.routing)

    def link_flows(self) -> Dict[Tuple[str, str], float]:
        """Data rate on each used physical link (empty if no routing stored)."""
        if self.routing is None:
            return {}
        return physical_link_flows(self.ext, self.routing)

    def summary(self) -> str:
        lines = [
            f"Solution via {self.method}"
            + (f" ({self.iterations} iterations)" if self.iterations else ""),
            f"  total utility: {self.utility:.6g}",
        ]
        for view in self.ext.commodities:
            a = float(self.admitted[view.index])
            lines.append(
                f"  {view.name}: admitted {a:.4g} / offered {view.max_rate:.4g} "
                f"({100.0 * a / view.max_rate:.1f}%)"
            )
        report = self.feasibility()
        if report is not None:
            lines.append(
                f"  max node utilization: {report.max_utilization:.3f}"
                + ("" if report.feasible else "  [INFEASIBLE]")
            )
        return "\n".join(lines)


def build_solution(
    ext: ExtendedNetwork,
    routing: RoutingState,
    cost_model: CostModel,
    method: str,
    iterations: Optional[int] = None,
    extras: Optional[Dict[str, object]] = None,
    traffic: Optional[np.ndarray] = None,
) -> Solution:
    """Assemble a :class:`Solution` from a routing state.

    ``traffic`` accepts the flow-balance solution of ``routing`` when the
    caller already holds it (e.g. from an :class:`~repro.core.context.
    IterationContext`), avoiding a redundant :func:`solve_traffic`.
    """
    if traffic is None:
        traffic = solve_traffic(ext, routing)
    breakdown = evaluate_cost(ext, routing, cost_model, traffic)
    # keep usage handy for analysis without recomputation
    edge_usage, node_usage = resource_usage(ext, routing, traffic)
    merged: Dict[str, object] = {
        "edge_usage": edge_usage,
        "node_usage": node_usage,
        "traffic": traffic,
        "utility_loss": breakdown.utility_loss,
        "penalty": breakdown.penalty,
    }
    if extras:
        merged.update(extras)
    return Solution(
        ext=ext,
        admitted=breakdown.admitted,
        utility=breakdown.utility,
        cost=breakdown.total,
        method=method,
        routing=routing,
        iterations=iterations,
        extras=merged,
    )
