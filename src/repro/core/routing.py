"""Routing variables, flow balance with gains, and resource usage.

Section 4 of the paper reformulates the flow problem with *local routing
fractions* as control variables: ``phi_ik(j)`` is the fraction of node ``i``'s
commodity-``j`` traffic ``t_i(j)`` processed over edge ``(i, k)``.  The
induced traffic solves the gain-aware flow balance (eq. (3))

    ``t_i(j) = r_i(j) + sum_l t_l(j) * phi_li(j) * beta_li(j)``

and the resource usage follows (eqs. (4), (5))

    ``f_ik = sum_j t_i(j) * phi_ik(j) * c_ik(j)``,    ``f_i = sum_k f_ik``.

Because every commodity's allowed subgraph in the extended network is a DAG,
eq. (3) is solved exactly by a single pass in topological order; a sparse
linear solver is provided as an independent cross-check (the paper notes
eq. (3) "has a unique solution of t given r and phi").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.core.state import ModelState, use_array_core
from repro.core.transform import ExtendedNetwork, ExtNodeKind
from repro.exceptions import InfeasibleError, RoutingError

__all__ = [
    "RoutingState",
    "initial_routing",
    "uniform_routing",
    "validate_routing",
    "external_inputs",
    "external_inputs_rows",
    "solve_traffic",
    "solve_traffic_commodity",
    "solve_traffic_scalar",
    "solve_traffic_linear",
    "commodity_edge_flows",
    "resource_usage",
    "admitted_rates",
    "utilization_profile",
    "FeasibilityReport",
    "feasibility_report",
]


@dataclass
class RoutingState:
    """Routing fractions ``phi`` as a ``(J, E)`` array over extended edges.

    ``phi[j, e]`` is the fraction of the tail node's commodity-``j`` traffic
    sent over extended edge ``e``; rows are restricted to each commodity's
    allowed edge set.
    """

    phi: np.ndarray

    def copy(self) -> "RoutingState":
        return RoutingState(self.phi.copy())

    def admitted_fraction(self, ext: ExtendedNetwork, j: int) -> float:
        """Fraction of commodity ``j``'s offered load that is admitted."""
        return float(self.phi[j, ext.commodities[j].input_edge])


def initial_routing(ext: ExtendedNetwork) -> RoutingState:
    """The paper's natural feasible start: *shed everything*.

    Every dummy source routes its entire offered load over the dummy
    difference link (``a_j = 0``); interior nodes split uniformly over their
    allowed out-edges.  Resource usage of every capacity-constrained node is
    exactly zero, so the start is strictly feasible regardless of capacities,
    and the algorithm then pulls traffic into the network only while the
    marginal utility exceeds the marginal congestion cost.
    """
    return _make_routing(ext, shed_everything=True)


def uniform_routing(ext: ExtendedNetwork) -> RoutingState:
    """Uniform split everywhere, including at the dummy sources.

    Useful for tests and for studying the algorithm from an interior start;
    unlike :func:`initial_routing` it is not guaranteed feasible.
    """
    return _make_routing(ext, shed_everything=False)


def _make_routing(ext: ExtendedNetwork, shed_everything: bool) -> RoutingState:
    phi = np.zeros((ext.num_commodities, ext.num_edges), dtype=float)
    for view in ext.commodities:
        j = view.index
        for node in view.node_indices:
            if node == view.sink:
                continue
            out = ext.commodity_out_edges[j][node]
            if not out:
                continue
            if shed_everything and node == view.dummy:
                phi[j, view.difference_edge] = 1.0
            else:
                phi[j, out] = 1.0 / len(out)
    return RoutingState(phi)


def validate_routing(
    ext: ExtendedNetwork, routing: RoutingState, atol: float = 1e-9
) -> None:
    """Check ``phi``: non-negative, on-graph, rows sum to 1 at non-sink nodes.

    Raises :class:`RoutingError` on violation (paper, Section 4's definition
    of a routing decision).
    """
    phi = routing.phi
    if phi.shape != (ext.num_commodities, ext.num_edges):
        raise RoutingError(
            f"phi has shape {phi.shape}, expected "
            f"{(ext.num_commodities, ext.num_edges)}"
        )
    if np.any(phi < -atol):
        raise RoutingError("phi has negative entries")
    off_graph = phi * (~ext.allowed)
    if np.any(np.abs(off_graph) > atol):
        raise RoutingError("phi routes traffic on edges outside the commodity DAG")
    for view in ext.commodities:
        j = view.index
        for node in view.node_indices:
            if node == view.sink:
                continue
            out = ext.commodity_out_edges[j][node]
            if not out:
                continue
            total = float(phi[j, out].sum())
            if abs(total - 1.0) > max(atol, 1e-7):
                raise RoutingError(
                    f"commodity {view.name!r}: out-fractions at node "
                    f"{ext.nodes[node].name!r} sum to {total}, expected 1"
                )


def external_inputs(ext: ExtendedNetwork) -> np.ndarray:
    """The ``(J, V)`` external input matrix ``r`` of eq. (2):
    ``lambda_j`` at each dummy source, zero elsewhere.

    The matrix is constant per network; a cached template is copied on each
    call (callers -- notably the flow solve -- mutate the result in place).
    """
    template = getattr(ext, "_external_inputs_template", None)
    if template is None:
        template = np.zeros((ext.num_commodities, ext.num_nodes), dtype=float)
        template[np.arange(ext.num_commodities), ext.commodity_dummies] = (
            ext.commodity_max_rates
        )
        ext._external_inputs_template = template
    return template.copy()


def external_inputs_rows(ext: ExtendedNetwork, lo: int, hi: int) -> np.ndarray:
    """Rows ``[lo, hi)`` of :func:`external_inputs` as a read-only view.

    Sharded workers seed their commodity rows from this without copying the
    whole ``(J, V)`` template every dispatch.
    """
    external_inputs(ext)  # ensure the cached template exists
    return ext._external_inputs_template[lo:hi]


def solve_traffic(ext: ExtendedNetwork, routing: RoutingState) -> np.ndarray:
    """Solve the gain-aware flow balance (eq. (3)) for all commodities.

    Returns ``t`` of shape ``(J, V)``: the traffic rate of each commodity at
    each extended node.  Exact in one topological pass per commodity because
    the allowed subgraphs are DAGs.

    Vectorized over the cross-commodity levels of
    :class:`repro.core.transform.MergedWavePlan`: per level, one gather of
    tail traffic and one ordered scatter-add into the heads, covering every
    commodity at once through flattened disjoint index spaces.  ``np.add.at``
    accumulates element by element in index order (and the fancy ``+=`` fast
    path only fires when a level's heads are distinct), so the result is bit
    identical to :func:`solve_traffic_scalar` -- the property tests pin this.

    When the array core is active (the default, see
    :mod:`repro.core.state`) the levels instead run as CSR mat-vec sweeps
    of the cached :class:`~repro.core.state.ModelState`, which visits the
    same contributions in the same order -- still bit identical, pinned by
    ``DifferentialOracle.compare_cores``.
    """
    phi_flat = routing.phi.reshape(-1)
    t = external_inputs(ext)
    if use_array_core():
        ModelState.of(ext).solve_traffic_into(t.reshape(-1), phi_flat)
        return t
    t_flat = t.reshape(-1)
    for edges, _raw, tails, heads, gains, _costs, unique, _ut in (
        ext.merged_forward_plan.levels
    ):
        contrib = t_flat[tails] * phi_flat[edges] * gains
        if unique:
            t_flat[heads] += contrib
        else:
            np.add.at(t_flat, heads, contrib)
    return t


def solve_traffic_commodity(
    ext: ExtendedNetwork, j: int, phi_row: np.ndarray
) -> np.ndarray:
    """Row ``j`` of :func:`solve_traffic`: one commodity's flow balance.

    This is the sharding primitive of the process-parallel backend
    (:mod:`repro.parallel`): commodity subproblems are independent given
    ``phi``, so each worker runs this per owned commodity.  It walks the
    commodity's own :class:`~repro.core.transform.CommodityFlowPlan` blocks
    with the same gather/ordered-scatter discipline as the merged
    cross-commodity wave -- the commodities' flattened index spaces are
    disjoint there, so the per-commodity accumulation order is exactly the
    merged plan's restriction to row ``j`` and the result is bit-identical
    to ``solve_traffic(ext, routing)[j]`` (pinned by tests).
    """
    plan = ext.flow_plans[j]
    t = np.zeros(ext.num_nodes, dtype=float)
    t[ext.commodity_dummies[j]] = ext.commodity_max_rates[j]
    offsets = plan.offsets
    for b in range(len(offsets) - 1):
        s, e = offsets[b], offsets[b + 1]
        contrib = t[plan.tails[s:e]] * phi_row[plan.edges[s:e]] * plan.gains[s:e]
        if plan.unique_heads[b]:
            t[plan.heads[s:e]] += contrib
        else:
            np.add.at(t, plan.heads[s:e], contrib)
    return t


def solve_traffic_scalar(ext: ExtendedNetwork, routing: RoutingState) -> np.ndarray:
    """Reference scalar implementation of :func:`solve_traffic`.

    One pure-Python topological pass per commodity.  Kept as the ground truth
    the vectorized solver is asserted bit-identical against, and for
    small-instance debugging where stepping through the recursion helps.
    """
    phi = routing.phi
    t = external_inputs(ext)
    for view in ext.commodities:
        j = view.index
        tj = t[j]
        out_lists = ext.commodity_out_edges[j]
        for node in view.topo_order:
            ti = tj[node]
            if ti == 0.0:
                continue
            for e in out_lists[node]:
                frac = phi[j, e]
                if frac != 0.0:
                    tj[ext.edge_head[e]] += ti * frac * ext.gain[j, e]
    return t


def solve_traffic_linear(ext: ExtendedNetwork, routing: RoutingState) -> np.ndarray:
    """Independent cross-check of :func:`solve_traffic` via a sparse solve.

    Builds ``(I - P^T) t = r`` per commodity, where ``P[l, i] = phi_li * beta_li``.
    Works for any loop-free routing set; used in tests to validate the
    topological solver.
    """
    phi = routing.phi
    t = np.zeros((ext.num_commodities, ext.num_nodes), dtype=float)
    r = external_inputs(ext)
    n = ext.num_nodes
    for view in ext.commodities:
        j = view.index
        rows, cols, vals = [], [], []
        for e in view.edge_indices:
            weight = phi[j, e] * ext.gain[j, e]
            if weight != 0.0:
                rows.append(ext.edge_head[e])
                cols.append(ext.edge_tail[e])
                vals.append(weight)
        transfer = sp.coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsr()
        system = sp.eye(n, format="csr") - transfer
        t[j] = spla.spsolve(system.tocsc(), r[j])
    return t


def commodity_edge_flows(
    ext: ExtendedNetwork, routing: RoutingState, traffic: Optional[np.ndarray] = None
) -> np.ndarray:
    """Per-commodity, per-edge flow ``y[j, e] = t_tail(j) * phi[j, e]``.

    This is the commodity flow *entering* edge ``e`` measured in tail-node
    units (pre-processing); multiply by ``gain[j, e]`` for the emitted rate.
    """
    if traffic is None:
        traffic = solve_traffic(ext, routing)
    return traffic[:, ext.edge_tail] * routing.phi


def resource_usage(
    ext: ExtendedNetwork, routing: RoutingState, traffic: Optional[np.ndarray] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Resource usage per edge and per node (eqs. (4) and (5)).

    Returns ``(edge_usage, node_usage)``: ``edge_usage[e] = f_ik`` is the
    tail-node resource consumed by all commodities crossing ``e``;
    ``node_usage[i] = f_i`` sums ``edge_usage`` over ``i``'s out-edges.

    The array core computes this from the allowed cells only (``O(P + E)``
    instead of the dense ``O(J * E)`` product) with the same per-edge
    commodity-order association -- bit identical, see
    :meth:`repro.core.state.ModelState.resource_usage`.
    """
    if use_array_core():
        if traffic is None:
            traffic = solve_traffic(ext, routing)
        return ModelState.of(ext).resource_usage(
            routing.phi.reshape(-1), traffic.reshape(-1)
        )
    flows = commodity_edge_flows(ext, routing, traffic)
    # same commodity-order sequential sum as einsum("je,je->e"), less dispatch
    edge_usage = np.add.reduce(flows * ext.cost, axis=0)
    node_usage = np.zeros(ext.num_nodes, dtype=float)
    np.add.at(node_usage, ext.edge_tail, edge_usage)
    return edge_usage, node_usage


def admitted_rates(
    ext: ExtendedNetwork, routing: RoutingState, traffic: Optional[np.ndarray] = None
) -> np.ndarray:
    """Admitted rate ``a_j``: the flow over each dummy input link."""
    if traffic is None:
        traffic = solve_traffic(ext, routing)
    rows = getattr(ext, "_commodity_rows", None)
    if rows is None:
        rows = ext._commodity_rows = np.arange(ext.num_commodities)
    return (
        traffic[rows, ext.commodity_dummies]
        * routing.phi[rows, ext.commodity_input_edges]
    )


def utilization_profile(node_usage: np.ndarray, capacity: np.ndarray) -> np.ndarray:
    """Per-node utilization ``usage / capacity``, safe for edge capacities.

    Infinite-capacity nodes (sinks, dummies) report 0.  Zero-capacity nodes
    (drained or failed hosts) report 0 when idle and ``inf`` when they carry
    any usage, instead of emitting divide-by-zero warnings and ``nan``.
    """
    utilization = np.zeros_like(node_usage, dtype=float)
    positive = capacity > 0.0  # includes inf: usage / inf == 0.0 exactly
    utilization[positive] = node_usage[positive] / capacity[positive]
    if not positive.all():
        drained = ~positive
        utilization[drained] = np.where(node_usage[drained] > 0.0, np.inf, 0.0)
    return utilization


@dataclass
class FeasibilityReport:
    """Capacity-feasibility summary of a routing state."""

    node_usage: np.ndarray
    utilization: np.ndarray  # usage / capacity (0 where capacity is inf)
    max_utilization: float
    violations: List[Tuple[str, float, float]]  # (node name, usage, capacity)

    @property
    def feasible(self) -> bool:
        return not self.violations


def feasibility_report(
    ext: ExtendedNetwork,
    routing: RoutingState,
    traffic: Optional[np.ndarray] = None,
    rtol: float = 1e-9,
) -> FeasibilityReport:
    """Evaluate the capacity constraints (eq. (6)) for a routing state."""
    __, node_usage = resource_usage(ext, routing, traffic)
    finite = np.isfinite(ext.capacity)
    utilization = utilization_profile(node_usage, ext.capacity)
    violations = [
        (ext.nodes[i].name, float(node_usage[i]), float(ext.capacity[i]))
        for i in np.nonzero(finite & (node_usage > ext.capacity * (1.0 + rtol)))[0]
    ]
    max_util = float(utilization.max()) if utilization.size else 0.0
    return FeasibilityReport(node_usage, utilization, max_util, violations)


def require_feasible(ext: ExtendedNetwork, routing: RoutingState) -> None:
    """Raise :class:`InfeasibleError` if the routing violates any capacity."""
    report = feasibility_report(ext, routing)
    if not report.feasible:
        worst = max(report.violations, key=lambda v: v[1] / v[2])
        raise InfeasibleError(
            f"capacity violated at {len(report.violations)} node(s); worst: "
            f"{worst[0]!r} uses {worst[1]:.4g} of {worst[2]:.4g}"
        )


def physical_link_flows(
    ext: ExtendedNetwork, routing: RoutingState, traffic: Optional[np.ndarray] = None
) -> Dict[Tuple[str, str], float]:
    """Map each used physical link to the total data rate crossing it.

    The wire rate of a physical link equals the resource usage of its
    bandwidth node (one bandwidth unit per unit of post-processing flow).
    """
    edge_usage, __ = resource_usage(ext, routing, traffic)
    result: Dict[Tuple[str, str], float] = {}
    for edge in ext.edges:
        if edge.physical_link is not None and ext.nodes[edge.tail].kind is (
            ExtNodeKind.BANDWIDTH
        ):
            result[edge.physical_link] = (
                result.get(edge.physical_link, 0.0) + float(edge_usage[edge.index])
            )
    return result
