"""Per-iteration flow cache: everything derivable from one routing state.

Every phase of a gradient iteration -- the update map ``Gamma``, the
convergence check, the trajectory record, the optimality residuals -- needs
the same quantities: the flow balance solution ``t`` (eq. (3)), the resource
usage ``f`` (eqs. (4)-(5)), the cost breakdown ``A = Y + eps * D``, and the
derivative chain ``dA/df -> dA/dr -> delta`` (eqs. (9), (11), (15)).  The
seed implementation recomputed them ad hoc, solving the flow balance up to
three times per iteration.  :class:`IterationContext` computes each exactly
once per routing state; the run loops thread it through so every consumer
reads the cache instead of re-solving.

The context is immutable by convention: it describes one routing state, and
a new state gets a new context (see :meth:`GradientAlgorithm.run
<repro.core.gradient.GradientAlgorithm.run>`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.marginals import (
    CostBreakdown,
    CostModel,
    all_edge_marginals,
    all_marginal_costs,
    evaluate_cost,
    link_cost_derivative,
)
from repro.core.routing import RoutingState, resource_usage, solve_traffic
from repro.core.state import ModelState, use_array_core
from repro.core.transform import ExtendedNetwork
from repro.obs.instrumentation import NULL_INSTRUMENTATION

__all__ = ["IterationContext", "build_iteration_context"]


@dataclass(frozen=True)
class IterationContext:
    """All per-iteration quantities of one routing state, computed once.

    ``dadr`` and ``delta`` are ``None`` when the context was built with
    ``with_derivatives=False`` (recording-only consumers such as the
    distributed runner's per-record cost evaluation).
    """

    routing: RoutingState
    traffic: np.ndarray  # (J, V): eq. (3)
    edge_usage: np.ndarray  # (E,): eq. (4)
    node_usage: np.ndarray  # (V,): eq. (5)
    breakdown: CostBreakdown  # A = Y + eps * D and its components
    dadf: Optional[np.ndarray]  # (E,): eq. (11)
    dadr: Optional[np.ndarray]  # (J, V): eq. (9)
    delta: Optional[np.ndarray]  # (J, E): eq. (15)'s bracket

    @property
    def cost(self) -> float:
        return float(self.breakdown.total)


def build_iteration_context(
    ext: ExtendedNetwork,
    routing: RoutingState,
    cost_model: CostModel,
    with_derivatives: bool = True,
    instrumentation=None,
) -> IterationContext:
    """Solve the flow balance once and derive everything an iteration needs.

    ``instrumentation`` (``repro.obs.Instrumentation``) times the two
    phases -- the flow solve and the derivative chain -- and counts flow
    solves; it never changes what is computed.
    """
    if instrumentation is None:
        instrumentation = NULL_INSTRUMENTATION
    with instrumentation.phase("flow_solve"):
        traffic = solve_traffic(ext, routing)
        edge_usage, node_usage = resource_usage(ext, routing, traffic)
        breakdown = evaluate_cost(
            ext, routing, cost_model, traffic, usage=(edge_usage, node_usage)
        )
    instrumentation.count("flow_solves")
    dadf = dadr = delta = None
    if with_derivatives:
        with instrumentation.phase("derivatives"):
            dadf = link_cost_derivative(ext, cost_model, edge_usage, node_usage)
            dadr = all_marginal_costs(ext, routing, dadf)
            if use_array_core():
                # sparse fill over the allowed cells only: every consumer of
                # the context's delta masks to allowed cells, where this is
                # bit-identical to the dense table (off-graph cells read 0.0
                # here instead of the meaningless dense dadr[head] term)
                delta = ModelState.of(ext).edge_marginals_dense(
                    dadf, dadr.reshape(-1)
                )
            else:
                delta = all_edge_marginals(ext, dadf, dadr)
    return IterationContext(
        routing=routing,
        traffic=traffic,
        edge_usage=edge_usage,
        node_usage=node_usage,
        breakdown=breakdown,
        dadf=dadf,
        dadr=dadr,
        delta=delta,
    )
