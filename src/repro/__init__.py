"""streamflow -- reproduction of Xia, Towsley & Zhang (ICDCS 2007).

*Distributed Resource Management and Admission Control of Stream Processing
Systems with Max Utility.*

Public API tour
---------------
Model building::

    from repro import PhysicalNetwork, Commodity, StreamNetwork, Task

Solving (one-liner)::

    from repro import solve
    solution = solve(stream_network)            # distributed gradient
    optimum = solve(stream_network, method="optimal")   # centralized LP/FW
    result = solve(stream_network, full_result=True)    # RunResult protocol

Observability::

    from repro import Instrumentation, solve
    inst = Instrumentation()
    solution = solve(stream_network, instrumentation=inst)
    inst.export_metrics("metrics.json")   # repro.metrics/1 schema
    inst.export_trace("trace.json")       # chrome://tracing timeline

Algorithm objects (full control + convergence history)::

    from repro import (build_extended_network, GradientAlgorithm,
                       GradientConfig, BackpressureAlgorithm)

See README.md for a quickstart and DESIGN.md for the paper-to-module map.
"""

import warnings
from dataclasses import replace
from typing import Optional, Union

from repro.core import (
    AdmissionController,
    AlphaFairUtility,
    BackpressureAlgorithm,
    BackpressureConfig,
    BackpressureResult,
    CappedLinearUtility,
    Commodity,
    CostModel,
    ExtendedNetwork,
    GradientAlgorithm,
    GradientConfig,
    GradientResult,
    InverseBarrier,
    IterationContext,
    LinearUtility,
    Link,
    LogBarrier,
    LogUtility,
    Node,
    NodeKind,
    OptimalResult,
    PhysicalNetwork,
    RoutingState,
    RunResult,
    RunResultMixin,
    Solution,
    SqrtUtility,
    StreamNetwork,
    Task,
    build_extended_network,
    solve_concave,
    solve_lp,
    solve_optimal,
)
from repro.obs import NULL_INSTRUMENTATION, Instrumentation
from repro.options import SolveOptions
from repro.exceptions import (
    ConvergenceError,
    InfeasibleError,
    ModelError,
    ParallelExecutionError,
    RoutingError,
    SimulationError,
    SolverError,
    StreamFlowError,
    TransformError,
    ValidationError,
)

__version__ = "1.0.0"

__all__ = [
    "solve",
    "SolveOptions",
    "Instrumentation",
    "RunResult",
    "RunResultMixin",
    "OptimalResult",
    "AdmissionController",
    "AlphaFairUtility",
    "BackpressureAlgorithm",
    "BackpressureConfig",
    "BackpressureResult",
    "CappedLinearUtility",
    "Commodity",
    "CostModel",
    "ExtendedNetwork",
    "GradientAlgorithm",
    "GradientConfig",
    "GradientResult",
    "InverseBarrier",
    "IterationContext",
    "LinearUtility",
    "Link",
    "LogBarrier",
    "LogUtility",
    "Node",
    "NodeKind",
    "PhysicalNetwork",
    "RoutingState",
    "Solution",
    "SqrtUtility",
    "StreamNetwork",
    "Task",
    "build_extended_network",
    "solve_concave",
    "solve_lp",
    "solve_optimal",
    "StreamFlowError",
    "ModelError",
    "ValidationError",
    "TransformError",
    "RoutingError",
    "InfeasibleError",
    "ConvergenceError",
    "ParallelExecutionError",
    "SolverError",
    "SimulationError",
    "__version__",
]


SOLVE_METHODS = ("gradient", "optimal", "backpressure", "distributed")

# legacy keyword spellings accepted (with a DeprecationWarning) by solve();
# each maps onto a field of the method's config class
_LEGACY_GRADIENT_KEYS = (
    "eta",
    "max_iterations",
    "tolerance",
    "patience",
    "use_blocking",
    "record_every",
    "adaptive_eta",
    "eps",
)
_LEGACY_BACKPRESSURE_KEYS = (
    "buffer_cap",
    "slot_length",
    "max_iterations",
    "record_every",
)


def _coerce_config(method: str, config, legacy: dict):
    """Resolve the uniform ``config=`` argument (plus deprecated kwargs)."""
    cls = BackpressureConfig if method == "backpressure" else GradientConfig
    allowed = (
        _LEGACY_BACKPRESSURE_KEYS
        if method == "backpressure"
        else _LEGACY_GRADIENT_KEYS
    )
    if legacy:
        unknown = sorted(set(legacy) - set(allowed))
        if unknown:
            raise TypeError(
                f"solve() got unexpected keyword arguments {unknown} "
                f"for method {method!r}"
            )
        warnings.warn(
            f"passing {sorted(legacy)} to solve() directly is deprecated; "
            f"pass config={cls.__name__}(...) instead",
            DeprecationWarning,
            stacklevel=3,
        )
        fields = dict(legacy)
        eps = fields.pop("eps", None)
        if eps is not None:
            fields["cost_model"] = CostModel(eps=eps)
        config = replace(config, **fields) if config is not None else cls(**fields)
    if config is not None and not isinstance(config, cls):
        raise TypeError(
            f"method {method!r} takes a {cls.__name__}, "
            f"got {type(config).__name__}"
        )
    return config if config is not None else cls()


def solve(
    stream_network: StreamNetwork,
    method: Optional[str] = None,
    config: Optional[Union[GradientConfig, BackpressureConfig]] = None,
    instrumentation: Optional[Instrumentation] = None,
    full_result: Optional[bool] = None,
    workers: Optional[Union[int, str]] = None,
    backend=None,
    staleness: Optional[int] = None,
    execution: Optional[str] = None,
    validate: Union[bool, str, None] = None,
    options: Optional[SolveOptions] = None,
    **legacy,
):
    """Solve the joint admission/routing/allocation problem for a model.

    Parameters
    ----------
    stream_network:
        The validated problem instance.
    options:
        A single frozen :class:`SolveOptions` carrying every knob below.
        This is the preferred spelling; the individual keyword arguments
        are retained as deprecated aliases for it (one release) and may
        not be combined with ``options=``.  See the migration table in
        docs/api.md.
    method:
        ``"gradient"`` -- the paper's distributed algorithm, synchronous
        engine (default);
        ``"distributed"`` -- the same algorithm executed as an actual
        message-passing protocol (bit-identical iterates, plus
        message/byte/round accounting);
        ``"optimal"`` -- the centralized LP / Frank-Wolfe optimum;
        ``"backpressure"`` -- the baseline of [6] (solution at its final
        time-averaged rates; no routing state).
    config:
        One optional config object, uniform across methods: a
        :class:`GradientConfig` for ``"gradient"``/``"distributed"``, a
        :class:`BackpressureConfig` for ``"backpressure"``; ``"optimal"``
        takes none.  (Per-parameter keyword arguments such as ``eta=`` are
        deprecated aliases that still work but warn.)
    instrumentation:
        Optional :class:`repro.obs.Instrumentation` hook collecting phase
        timings, trajectory events, and (distributed mode) message/byte
        counts.  Defaults to a zero-overhead no-op.
    full_result:
        When True, return the full :class:`~repro.core.result.RunResult`
        (trajectory + solution) instead of just the
        :class:`~repro.core.solution.Solution`.  Uniform across methods:
        ``"optimal"`` returns an :class:`OptimalResult` wrapper.
    workers:
        Parallel execution (``"gradient"``/``"distributed"`` only): shard
        the per-commodity iteration work across this many workers.  An
        integer >= 2 keeps its historical meaning (the process backend,
        :class:`repro.parallel.ParallelBackend`); ``workers=1`` resolves to
        the serial engine (a pool of one is pure overhead); the string
        ``"auto"`` lets :func:`repro.parallel.auto_backend` pick
        serial/thread/process from CPUs and problem size so small
        instances never pay pool overhead.  Synchronous parallel iterates
        are bit-identical to the serial default (``None``); see
        ``docs/parallelism.md``.
    backend:
        Explicit backend selection: an
        :class:`~repro.parallel.ExecutionBackend` instance (borrowed -- the
        caller closes it) or one of ``"serial"``/``"thread"``/
        ``"process"``/``"auto"``, combinable with ``workers=<count>``.
        When neither ``backend`` nor ``workers`` is given, the
        ``REPRO_BACKEND`` environment variable supplies a default name.
        Backends built here are context-managed: pools and shared-memory
        segments are released even when the run raises mid-iteration.
    staleness:
        Bounded-staleness batched dispatch for the process backend
        (``method="gradient"`` only): run up to ``staleness + 1``
        iterations per worker round-trip with the global link-cost
        derivative frozen inside a batch.  ``staleness=0`` (and the
        default ``None``) keeps the synchronous bit-identical schedule;
        ``staleness=K`` is a documented relaxed mode (drift bound in
        docs/parallelism.md).  Batching engages between trajectory
        records, so it needs ``config.record_every > 1`` to take effect.
        Under ``method="distributed", execution="async"`` the same number
        is the bounded-staleness freshness rule of the barrier-free
        engine: a node may iterate on neighbour values up to ``staleness``
        epochs older than its own counter (default
        :data:`repro.simulation.async_engine.DEFAULT_STALENESS`).
    execution:
        Execution model for ``method="distributed"``: ``"sync"`` (and the
        default ``None``) runs the phase-barrier protocol; ``"async"``
        runs the barrier-free event-driven engine
        (:class:`repro.simulation.AsyncGradientRun`) in which agents react
        to individual message deliveries under the bounded-staleness rule.
        Fault injection (delay/loss/duplication) is available on the
        direct :class:`~repro.simulation.AsyncGradientRun` API; ``solve``
        always uses a perfect network.  See docs/async.md.
    validate:
        Audit the result against the paper's invariant catalog
        (:mod:`repro.validate`).  ``True`` attaches a
        :class:`~repro.validate.ValidationReport` to ``result.validation``
        and ``solution.extras["validation"]``; ``"strict"`` additionally
        raises :class:`ValidationError` if any check fails.  The default
        (``False``) runs no checks -- iterates and flow-solve counts are
        unchanged (pinned by tests).  See docs/validation.md.

    Returns
    -------
    Solution or RunResult
        The final solution, or the full result when ``full_result=True``.
    """
    explicit = {
        name: value
        for name, value in (
            ("method", method),
            ("config", config),
            ("instrumentation", instrumentation),
            ("full_result", full_result),
            ("workers", workers),
            ("backend", backend),
            ("staleness", staleness),
            ("execution", execution),
            ("validate", validate),
        )
        if value is not None
    }
    if options is not None:
        if explicit or legacy:
            clash = sorted(explicit) + sorted(legacy)
            raise TypeError(
                f"solve() got both options= and the keyword aliases {clash}; "
                f"fold them into the SolveOptions (options.replace(...))"
            )
        if not isinstance(options, SolveOptions):
            raise TypeError(
                f"options= takes a SolveOptions, got {type(options).__name__}"
            )
        opts = options
    else:
        opts = SolveOptions.from_kwargs(**explicit)
    return _solve_impl(
        stream_network, opts.method, opts.config, opts.instrumentation,
        opts.full_result, legacy,
        workers=opts.workers, backend=opts.backend, staleness=opts.staleness,
        execution=opts.execution, validate=opts.validate,
    )


def _solve_impl(
    stream_network, method, config, instrumentation, full_result, legacy,
    workers=None, backend=None, staleness=None, execution=None, validate=False,
):
    if method not in SOLVE_METHODS:
        raise ValueError(
            f"unknown method {method!r}; expected one of {SOLVE_METHODS}"
        )
    inst = instrumentation if instrumentation is not None else NULL_INSTRUMENTATION
    ext = build_extended_network(stream_network)

    if method not in ("gradient", "distributed") and (
        workers is not None or backend is not None or staleness is not None
    ):
        raise TypeError(
            f"workers=/backend=/staleness= apply only to the "
            f"gradient/distributed methods, not {method!r}"
        )
    if execution is not None:
        if execution not in ("sync", "async"):
            raise ValueError(
                f"unknown execution {execution!r}; expected 'sync' or 'async'"
            )
        if method != "distributed":
            raise TypeError(
                f"execution= applies only to method='distributed', "
                f"not {method!r}"
            )
    asynchronous = execution == "async"
    if staleness and method != "gradient" and not asynchronous:
        raise TypeError(
            "staleness= (batched dispatch) applies only to method='gradient' "
            "or to method='distributed' with execution='async'; the "
            "synchronous distributed runner proceeds round by round"
        )

    if method == "optimal":
        if config is not None or legacy:
            raise TypeError("method 'optimal' takes no config")
        with inst.phase("optimal_solve"):
            solution = solve_optimal(ext)
        if inst.enabled:
            inst.gauge("final_utility", solution.utility)
        result = OptimalResult(solution=solution)
    elif method == "backpressure":
        cfg = _coerce_config(method, config, legacy)
        result = BackpressureAlgorithm(ext, cfg).run(
            instrumentation=instrumentation
        )
    else:
        cfg = _coerce_config(method, config, legacy)
        from contextlib import nullcontext

        from repro.parallel import resolve_backend

        # under execution="async", staleness parameterizes the freshness
        # rule of the event-driven engine, not the backend's batched
        # dispatch -- the snapshot-evaluation backend stays synchronous
        resolved = resolve_backend(
            backend,
            workers,
            ext=ext,
            staleness=None if asynchronous else staleness,
            instrumentation=inst,
        )
        # a caller-supplied backend instance is borrowed (the caller closes
        # it); anything resolve_backend built here is owned, and the with
        # block releases its pool and shared-memory segments even when the
        # run raises mid-iteration
        scope = resolved if resolved is not backend else nullcontext(resolved)
        with scope:
            if method == "gradient":
                result = GradientAlgorithm(ext, cfg, backend=resolved).run(
                    instrumentation=instrumentation
                )
            elif asynchronous:
                from repro.simulation.async_engine import (
                    DEFAULT_STALENESS,
                    AsyncGradientRun,
                )

                result = AsyncGradientRun(
                    ext,
                    cfg,
                    staleness=(
                        staleness if staleness is not None else DEFAULT_STALENESS
                    ),
                    instrumentation=instrumentation,
                    backend=resolved,
                ).run(cfg.max_iterations, record_every=cfg.record_every)
            else:  # distributed, synchronous phase barriers
                from repro.simulation.runner import DistributedGradientRun

                result = DistributedGradientRun(
                    ext, cfg, instrumentation=instrumentation, backend=resolved
                ).run(cfg.max_iterations, record_every=cfg.record_every)
    if validate:
        from repro.validate import attach_validation

        attach_validation(result, ext, mode=validate, instrumentation=inst)
    return result if full_result else result.solution
