"""streamflow -- reproduction of Xia, Towsley & Zhang (ICDCS 2007).

*Distributed Resource Management and Admission Control of Stream Processing
Systems with Max Utility.*

Public API tour
---------------
Model building::

    from repro import PhysicalNetwork, Commodity, StreamNetwork, Task

Solving (one-liner)::

    from repro import solve
    solution = solve(stream_network)            # distributed gradient
    optimum = solve(stream_network, method="optimal")   # centralized LP/FW

Algorithm objects (full control + convergence history)::

    from repro import (build_extended_network, GradientAlgorithm,
                       GradientConfig, BackpressureAlgorithm)

See README.md for a quickstart and DESIGN.md for the paper-to-module map.
"""

from typing import Optional

from repro.core import (
    AdmissionController,
    AlphaFairUtility,
    BackpressureAlgorithm,
    BackpressureConfig,
    BackpressureResult,
    CappedLinearUtility,
    Commodity,
    CostModel,
    ExtendedNetwork,
    GradientAlgorithm,
    GradientConfig,
    GradientResult,
    InverseBarrier,
    IterationContext,
    LinearUtility,
    Link,
    LogBarrier,
    LogUtility,
    Node,
    NodeKind,
    PhysicalNetwork,
    RoutingState,
    Solution,
    SqrtUtility,
    StreamNetwork,
    Task,
    build_extended_network,
    solve_concave,
    solve_lp,
    solve_optimal,
)
from repro.exceptions import (
    ConvergenceError,
    InfeasibleError,
    ModelError,
    RoutingError,
    SimulationError,
    SolverError,
    StreamFlowError,
    TransformError,
    ValidationError,
)

__version__ = "1.0.0"

__all__ = [
    "solve",
    "AdmissionController",
    "AlphaFairUtility",
    "BackpressureAlgorithm",
    "BackpressureConfig",
    "BackpressureResult",
    "CappedLinearUtility",
    "Commodity",
    "CostModel",
    "ExtendedNetwork",
    "GradientAlgorithm",
    "GradientConfig",
    "GradientResult",
    "InverseBarrier",
    "IterationContext",
    "LinearUtility",
    "Link",
    "LogBarrier",
    "LogUtility",
    "Node",
    "NodeKind",
    "PhysicalNetwork",
    "RoutingState",
    "Solution",
    "SqrtUtility",
    "StreamNetwork",
    "Task",
    "build_extended_network",
    "solve_concave",
    "solve_lp",
    "solve_optimal",
    "StreamFlowError",
    "ModelError",
    "ValidationError",
    "TransformError",
    "RoutingError",
    "InfeasibleError",
    "ConvergenceError",
    "SolverError",
    "SimulationError",
    "__version__",
]


def solve(
    stream_network: StreamNetwork,
    method: str = "gradient",
    config: Optional[GradientConfig] = None,
) -> Solution:
    """Solve the joint admission/routing/allocation problem for a model.

    Parameters
    ----------
    stream_network:
        The validated problem instance.
    method:
        ``"gradient"`` -- the paper's distributed algorithm (default);
        ``"optimal"`` -- the centralized LP / Frank-Wolfe optimum;
        ``"backpressure"`` -- the baseline of [6] (returns the solution at
        its final time-averaged rates; no routing state).
    config:
        Optional :class:`GradientConfig` for the gradient method.

    Returns
    -------
    Solution
        Admitted rates, achieved utility, and (when available) the routing.
    """
    ext = build_extended_network(stream_network)
    if method == "gradient":
        result = GradientAlgorithm(ext, config).run()
        return result.solution
    if method == "optimal":
        return solve_optimal(ext)
    if method == "backpressure":
        bp = BackpressureAlgorithm(ext).run()
        return Solution(
            ext=ext,
            admitted=bp.average_rates,
            utility=bp.utility,
            cost=float("nan"),
            method="backpressure",
            routing=None,
            iterations=bp.iterations,
        )
    raise ValueError(
        f"unknown method {method!r}; expected 'gradient', 'optimal', "
        f"or 'backpressure'"
    )
