"""Exception hierarchy for the streamflow reproduction package.

All exceptions raised by this package derive from :class:`StreamFlowError`, so
callers can catch a single base class.  Specific subclasses distinguish model
construction errors from numerical/algorithmic failures.
"""

from __future__ import annotations


class StreamFlowError(Exception):
    """Base class for all errors raised by this package."""


class ModelError(StreamFlowError):
    """The stream-processing model is malformed (bad graph, tasks, rates)."""


class ValidationError(ModelError):
    """A model object failed validation (e.g. Property 1 violated)."""


class TransformError(StreamFlowError):
    """The extended-graph transformation could not be constructed."""


class RoutingError(StreamFlowError):
    """Routing variables are invalid (negative, non-stochastic, off-graph)."""


class InfeasibleError(StreamFlowError):
    """A flow or allocation violates a hard constraint."""


class ConvergenceError(StreamFlowError):
    """An iterative algorithm failed to converge within its iteration budget."""


class SolverError(StreamFlowError):
    """A centralized solver (LP / convex) failed or returned an invalid result."""


class ParallelExecutionError(StreamFlowError):
    """The process-parallel backend failed (worker crash, broken pool, misuse)."""


class SimulationError(StreamFlowError):
    """The message-passing simulation reached an inconsistent state."""


class ProtocolError(SimulationError):
    """A node agent received a message that violates the protocol contract."""


class ServeError(StreamFlowError):
    """The admission-control daemon (``repro.serve``) failed."""


class ServeRequestError(ServeError):
    """A ``repro.serve/1`` request is malformed (the client's fault)."""


class ServeUnavailableError(ServeError):
    """The background optimizer is down; event requests get 503-style
    responses until the daemon is restarted."""
