"""``repro.serve``: admission control as a service on the delta core.

The daemon (:class:`AdmissionServer`) owns a live epoch-versioned model
plus a warm execution backend, accepts admit/depart/demand-change requests
over the newline-delimited JSON ``repro.serve/1`` protocol, coalesces
bursts inside a batch window into few :class:`~repro.core.delta.
ProblemDelta` applications, and answers from the latest *converged,
validated* epoch while a background task re-optimises.

See docs/serving.md for the protocol spec and deployment guidance, and
``examples/serve_demo.py`` for an end-to-end walkthrough.
"""

from repro.serve.batching import BatchQueue, merge_scalar_run, plan_batch
from repro.serve.protocol import (
    EVENT_OPS,
    MAX_LINE_BYTES,
    READ_OPS,
    SERVE_SCHEMA,
    Request,
    decode_response,
    encode_request,
    encode_response,
    error_response,
    event_to_request,
    parse_request,
    request_to_event,
)
from repro.serve.server import AdmissionServer, ServeConfig, ServerThread
from repro.serve.session import (
    SERVE_CHECKS,
    EpochSnapshot,
    EventOutcome,
    ServeSession,
)

_CLIENT_EXPORTS = ("ServeClient", "ReplayReport", "replay_trace")


def __getattr__(name):
    # the client is imported lazily so `python -m repro.serve.client` does
    # not re-execute a module the package import already loaded (runpy's
    # "found in sys.modules" warning)
    if name in _CLIENT_EXPORTS:
        from repro.serve import client

        return getattr(client, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "SERVE_SCHEMA",
    "SERVE_CHECKS",
    "EVENT_OPS",
    "READ_OPS",
    "MAX_LINE_BYTES",
    "Request",
    "parse_request",
    "encode_request",
    "encode_response",
    "decode_response",
    "error_response",
    "request_to_event",
    "event_to_request",
    "plan_batch",
    "merge_scalar_run",
    "BatchQueue",
    "EventOutcome",
    "EpochSnapshot",
    "ServeSession",
    "ServeConfig",
    "AdmissionServer",
    "ServerThread",
    "ServeClient",
    "ReplayReport",
    "replay_trace",
]
