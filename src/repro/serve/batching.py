"""Batch-window coalescing: many requests, few epochs.

The daemon's throughput story is that an event does **not** cost an epoch.
Requests arriving within one batch window (default 20 ms) are drained
together, and every maximal run of *scalar* events (``demand`` /
``capacity`` -- the paper's Section V adaptation case, and the bulk of any
realistic churn mix) is merged into **one** :class:`~repro.core.delta.
ProblemDelta` whose :class:`~repro.core.delta.ScalarPatch` carries the
last-write-wins union of the run.  ``ScalarPatch`` entries are absolute
values, so the merge is exact: applying the merged patch leaves the model
bit-identical to applying the run one event at a time, while bumping the
epoch once instead of N times (pinned in ``tests/test_serve.py``).

Structural events (admit/depart/failures) change the layout and therefore
keep one delta each -- their splice cost is the floor the delta core
already pays (see docs/online.md).

:class:`BatchQueue` is the asyncio side: a bounded queue whose
:meth:`~BatchQueue.collect` waits for the first pending event, then keeps
draining until the window closes or the batch size cap is hit.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, List, Sequence

from repro.core.delta import ProblemDelta, ScalarPatch, compile_event
from repro.exceptions import ServeError
from repro.online.events import CapacityChange, DemandChange, NetworkEvent

__all__ = ["PendingEvent", "BatchQueue", "plan_batch", "merge_scalar_run"]

_SCALAR_EVENTS = (DemandChange, CapacityChange)


def _is_scalar(event: NetworkEvent) -> bool:
    return isinstance(event, _SCALAR_EVENTS)


def plan_batch(events: Sequence[NetworkEvent]) -> List[List[NetworkEvent]]:
    """Group a batch into apply units: maximal scalar runs, lone structurals.

    Order is preserved -- a scalar run never merges *across* a structural
    event, because the structural splice changes the index space the
    scalar patch compiles against.
    """
    units: List[List[NetworkEvent]] = []
    run: List[NetworkEvent] = []
    for event in events:
        if _is_scalar(event):
            run.append(event)
            continue
        if run:
            units.append(run)
            run = []
        units.append([event])
    if run:
        units.append(run)
    return units


def merge_scalar_run(ext: Any, events: Sequence[NetworkEvent]) -> ProblemDelta:
    """One :class:`ProblemDelta` for a run of scalar events against ``ext``.

    Validates every event against the evolving stream network (unknown
    commodity/node names raise :class:`~repro.exceptions.ModelError`, the
    same behaviour as compiling them one at a time) and merges the patch
    entries last-write-wins.  A single-event run compiles through the
    standard :func:`~repro.core.delta.compile_event` path.
    """
    if not events:
        raise ServeError("merge_scalar_run needs at least one event")
    if len(events) == 1:
        return compile_event(ext, events[0])
    # local import: repro.online.rebuild imports the delta module at load time
    from repro.online.rebuild import apply_scalar_overrides

    rates_by_name = {}
    caps_by_name = {}
    for event in events:
        if not _is_scalar(event):
            raise ServeError(
                f"merge_scalar_run got a structural {type(event).__name__}"
            )
        if isinstance(event, DemandChange):
            rates_by_name[event.commodity] = event.new_rate
        else:
            caps_by_name[event.node] = event.new_capacity
    # scalar events cannot change topology, so only the final value per
    # target matters: one physical copy + one rebuild per touched commodity
    # replaces a full apply_event surgery per event (validation -- unknown
    # names, unservable rates -- matches the chained path)
    network = apply_scalar_overrides(
        ext.stream_network, rates=rates_by_name, capacities=caps_by_name
    )
    patch = ScalarPatch(
        node_capacity=tuple(
            sorted(
                (ext.node_index(node), cap)
                for node, cap in caps_by_name.items()
            )
        ),
        commodity_rate=tuple(
            sorted(
                (ext.commodity_view(name).index, rate)
                for name, rate in rates_by_name.items()
            )
        ),
    )
    return ProblemDelta(
        base_epoch=ext.epoch,
        event=tuple(events),
        network=network,
        dropped_commodities=(),
        dirty_commodities=(),
        scalar=patch,
    )


@dataclass
class PendingEvent:
    """One enqueued event request awaiting its batch's published epoch."""

    request: Any  # protocol.Request
    event: NetworkEvent
    future: "asyncio.Future[Any]"
    enqueued_at: float = 0.0
    connection: Any = None  # the owning connection (for per-request metrics)


@dataclass
class BatchQueue:
    """Bounded request queue with window-based batch collection.

    ``limit`` bounds the number of *pending* (enqueued but unanswered)
    event requests; :meth:`try_put` refuses beyond it, which the server
    turns into 429-style ``overloaded`` responses -- backpressure the
    client sees instead of unbounded buffering it doesn't.
    """

    limit: int = 1024
    _queue: "asyncio.Queue[PendingEvent]" = field(
        default_factory=asyncio.Queue
    )
    _pending: int = 0

    @property
    def pending(self) -> int:
        """Enqueued-but-unanswered event requests (backpressure gauge)."""
        return self._pending

    def try_put(self, item: PendingEvent) -> bool:
        """Enqueue unless the pending bound is hit; never blocks."""
        if self._pending >= self.limit:
            return False
        self._pending += 1
        self._queue.put_nowait(item)
        return True

    def task_done(self, count: int = 1) -> None:
        """The server answered ``count`` previously enqueued requests."""
        self._pending = max(0, self._pending - count)

    async def collect(
        self, window: float, max_batch: int
    ) -> List[PendingEvent]:
        """One batch: wait for the first item, drain until window/cap.

        Returns at least one item; the window clock starts when the first
        item arrives (not when the call does), so an idle server wakes
        exactly once per burst.
        """
        first = await self._queue.get()
        batch = [first]
        try:
            if window <= 0.0:
                # degenerate window: take whatever is already queued, no wait
                while len(batch) < max_batch and not self._queue.empty():
                    batch.append(self._queue.get_nowait())
                return batch
            loop = asyncio.get_running_loop()
            deadline = loop.time() + window
            while len(batch) < max_batch:
                remaining = deadline - loop.time()
                if remaining <= 0.0:
                    break
                try:
                    item = await asyncio.wait_for(
                        self._queue.get(), timeout=remaining
                    )
                except asyncio.TimeoutError:
                    break
                batch.append(item)
        except asyncio.CancelledError:
            # a concurrent collector may be cancelled mid-window (fault or
            # drain); hand its items back so nothing silently hangs
            for item in batch:
                self._queue.put_nowait(item)
            raise
        return batch

    def drain_nowait(self) -> List[PendingEvent]:
        """Everything currently queued, without waiting (shutdown path)."""
        items: List[PendingEvent] = []
        while not self._queue.empty():
            items.append(self._queue.get_nowait())
        return items
