"""The live model a serve daemon owns: epochs in, snapshots out.

:class:`ServeSession` wraps the delta core (:mod:`repro.core.delta`), a warm
execution backend (:mod:`repro.parallel`), and the invariant checker
(:mod:`repro.validate`) into the publish loop the daemon drives:

1. a drained batch of online events is applied through
   :func:`~repro.serve.batching.plan_batch` -- scalar runs become one
   merged :class:`~repro.core.delta.ProblemDelta`, structural events one
   each -- with routing carried across every epoch
   (:func:`~repro.core.delta.carry_routing`), one ``emergency_shed`` per
   drained batch (mid-batch routing is never read), and the backend
   refreshed in place, so the worker pool survives,
2. the gradient engine *refines* the carried state for a bounded number of
   iterations (the background re-optimisation -- warm starts mean a few
   iterations recover most of the utility, see docs/online.md),
3. the result is audited by :class:`~repro.validate.InvariantChecker` and,
   only if the audit passes, **published** as an immutable
   :class:`EpochSnapshot` via a single attribute store -- atomic under the
   GIL, so the asyncio thread answering requests never sees a torn epoch.

Requests are answered from the latest published snapshot; the staleness
bound is structural: at most the one batch currently being optimised can be
newer than what a reader sees (``current_epoch - snapshot.epoch <= 1``
whenever the optimizer is healthy; pinned in ``tests/test_serve.py``).

The session is transport-agnostic and synchronous -- the asyncio server
calls :meth:`process_batch` from an executor thread; everything here also
works standalone for tests and offline replay.
"""

from __future__ import annotations

import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.commodity import StreamNetwork
from repro.core.delta import apply_delta, carry_routing, compile_event
from repro.core.gradient import GradientAlgorithm, GradientConfig
from repro.core.routing import feasibility_report, initial_routing
from repro.core.solution import Solution, build_solution
from repro.core.transform import build_extended_network
from repro.exceptions import ModelError, ServeError
from repro.obs.instrumentation import NULL_INSTRUMENTATION
from repro.online.events import CommodityArrival, CommodityDeparture, NetworkEvent
from repro.online.rebuild import emergency_shed
from repro.serve.batching import merge_scalar_run, plan_batch
from repro.validate import InvariantChecker, ValidationReport

__all__ = ["SERVE_CHECKS", "EventOutcome", "EpochSnapshot", "ServeSession"]

# the per-epoch audit: every structural invariant of the paper's catalog.
# monotonicity needs an iterate history an online epoch does not have, and
# duality_gap solves an LP per audit -- far too slow for a 20 ms publish
# loop (it stays available via checks= for offline forensics).
SERVE_CHECKS = ("routing", "conservation", "capacity", "admission", "dummy")


@dataclass(frozen=True)
class EventOutcome:
    """What happened to one event inside a batch."""

    event: NetworkEvent
    accepted: bool
    epoch: int  # model epoch after this event's apply unit (0 if rejected)
    error: Optional[str] = None
    dropped_commodities: Tuple[str, ...] = ()


@dataclass(frozen=True)
class EpochSnapshot:
    """One published, validated, converged-enough epoch.

    Immutable by construction: readers hold a reference and never see later
    mutation; a new epoch is a new snapshot object.
    """

    epoch: int
    seq: int  # publish sequence number (epochs can skip on rejected batches)
    utility: float
    max_utilization: float
    admitted: Dict[str, float]
    solution: Solution
    validation: Optional[ValidationReport]
    batch_size: int
    refine_iterations: int
    published_at: float = field(default_factory=time.monotonic)


class ServeSession:
    """The daemon's live model: apply batches, refine, validate, publish."""

    def __init__(
        self,
        network: StreamNetwork,
        options: Any = None,
        *,
        refine_iterations: int = 8,
        warmup_iterations: int = 200,
        validate_epochs: bool = True,
        checks: Sequence[str] = SERVE_CHECKS,
        min_admit_rate: float = 0.0,
        shed_on_event: bool = True,
        shed_bisection_steps: int = 16,
        instrumentation: Any = None,
    ) -> None:
        if refine_iterations < 1:
            raise ServeError("refine_iterations must be >= 1")
        if warmup_iterations < 1:
            raise ServeError("warmup_iterations must be >= 1")
        inst = instrumentation if instrumentation is not None else NULL_INSTRUMENTATION
        self.inst = inst

        config: Optional[GradientConfig] = None
        backend = None
        workers = None
        staleness = None
        if options is not None:
            from repro.options import SolveOptions

            if not isinstance(options, SolveOptions):
                raise ServeError(
                    f"options= takes a SolveOptions, got {type(options).__name__}"
                )
            if options.method != "gradient":
                raise ServeError(
                    "the serve session drives the gradient method; "
                    f"got options.method={options.method!r}"
                )
            config = options.config
            backend = options.backend
            workers = options.workers
            staleness = options.staleness
        self.config = config or GradientConfig()

        self.ext = build_extended_network(network)
        from repro.parallel.backend import resolve_backend

        self.backend = resolve_backend(
            backend, workers, ext=self.ext, staleness=staleness,
            instrumentation=inst,
        )
        self._owns_backend = self.backend is not backend
        self.algo = GradientAlgorithm(self.ext, self.config, backend=self.backend)
        self.routing = initial_routing(self.ext)

        self.refine_iterations = refine_iterations
        self.warmup_iterations = warmup_iterations
        self.validate_epochs = validate_epochs
        self.checks = tuple(checks)
        self.min_admit_rate = min_admit_rate
        self.shed_on_event = shed_on_event
        # fewer bisection steps than the offline default (40): the serving
        # path trades shed precision (2^-16 on the admission scale) for a
        # bounded publish latency, and the audit still gates every epoch
        self.shed_bisection_steps = shed_bisection_steps

        self._snapshot: Optional[EpochSnapshot] = None
        self._seq = 0
        self._refined_total = 0
        self._lock = threading.Lock()  # one process_batch at a time
        self._closed = False

    # -- read side (any thread) --------------------------------------------------

    @property
    def snapshot(self) -> Optional[EpochSnapshot]:
        """The latest published epoch (``None`` before :meth:`warmup`)."""
        return self._snapshot

    def current_epoch(self) -> int:
        """The live model's epoch (may lead the published snapshot by the
        one batch currently being optimised)."""
        return int(self.ext.epoch)

    # -- write side (the optimizer thread) ---------------------------------------

    def warmup(self) -> EpochSnapshot:
        """Converge the initial model and publish epoch 0."""
        with self._lock:
            with self.inst.phase("serve.warmup"):
                self._refine(self.warmup_iterations)
                return self._publish(batch_size=0)

    def process_batch(
        self, events: Sequence[NetworkEvent]
    ) -> Tuple[List[EventOutcome], EpochSnapshot]:
        """Apply one drained batch, refine, validate, publish.

        Every event gets an :class:`EventOutcome` in request order;
        infeasible events are rejected individually (the rest of the batch
        still lands).  Raises :class:`~repro.exceptions.ServeError` only
        when the *published epoch itself* would be invalid -- the server
        turns that into 503s for the batch while reads keep the last good
        snapshot.
        """
        with self._lock:
            if self._closed:
                raise ServeError("session is closed")
            outcomes = self._apply_events(events)
            with self.inst.phase("serve.refine"):
                self._refine(self.refine_iterations)
            outcomes = self._enforce_min_admit(outcomes)
            snapshot = self._publish(batch_size=len(events))
            return outcomes, snapshot

    # -- internals ----------------------------------------------------------------

    def _apply_events(
        self, events: Sequence[NetworkEvent]
    ) -> List[EventOutcome]:
        outcomes: Dict[int, EventOutcome] = {}
        applied_any = False
        for unit in plan_batch(events):
            try:
                if len(unit) > 1:
                    delta = merge_scalar_run(self.ext, unit)
                    self.inst.count("serve.events_coalesced", len(unit))
                else:
                    delta = compile_event(self.ext, unit[0])
            except ModelError:
                if len(unit) > 1:
                    # one bad event in a merged run: degrade to per-event
                    # applies so its neighbours still land
                    for event in unit:
                        outcomes[id(event)] = self._apply_single(event)
                    continue
                outcomes[id(unit[0])] = self._rejected(unit[0])
                continue
            self._apply_delta(delta)
            applied_any = True
            for event in unit:
                outcomes[id(event)] = EventOutcome(
                    event=event,
                    accepted=True,
                    epoch=self.current_epoch(),
                    dropped_commodities=tuple(delta.dropped_commodities),
                )
        # one shed per batch, not per unit: mid-batch routing is never read,
        # so hard capacities only need to hold before the refine/publish
        # step (the audit's capacity check pins this)
        if applied_any:
            self._shed()
        return [outcomes[id(event)] for event in events]

    def _shed(self) -> None:
        if self.shed_on_event:
            self.routing = emergency_shed(
                self.ext, self.routing,
                bisection_steps=self.shed_bisection_steps,
            )

    def _apply_single(self, event: NetworkEvent) -> EventOutcome:
        try:
            delta = compile_event(self.ext, event)
        except ModelError:
            return self._rejected(event)
        self._apply_delta(delta)
        return EventOutcome(
            event=event,
            accepted=True,
            epoch=self.current_epoch(),
            dropped_commodities=tuple(delta.dropped_commodities),
        )

    def _rejected(self, event: NetworkEvent) -> EventOutcome:
        exc = sys.exc_info()[1]
        self.inst.count("serve.events_rejected")
        return EventOutcome(
            event=event, accepted=False, epoch=0, error=str(exc)
        )

    def _apply_delta(self, delta: Any) -> None:
        old_ext = self.ext
        with self.inst.phase("serve.apply"):
            applied = apply_delta(self.ext, delta)
            self.ext = applied.ext
            self.routing = carry_routing(
                old_ext, self.routing, self.ext, applied.maps
            )
            self.algo.refresh(applied)
        self.inst.count("serve.deltas_applied")
        self.inst.count(
            "serve.deltas_structural" if applied.structural
            else "serve.deltas_scalar"
        )
        self.inst.gauge("serve.epoch", float(self.ext.epoch))

    def _refine(self, iterations: int) -> None:
        routing, _context = self.backend.advance(
            self.routing, None, iterations, eta=self.config.eta
        )
        self.routing = routing
        self._refined_total += iterations
        self.inst.count("serve.refine_iterations", iterations)

    def _enforce_min_admit(
        self, outcomes: List[EventOutcome]
    ) -> List[EventOutcome]:
        """Admission policy: revert arrivals the optimizer starved.

        With ``min_admit_rate > 0`` an accepted arrival whose admitted rate
        after refinement is still below the bar is *reverted* (a departure
        is applied) and reported as a rejection -- admission control with
        teeth, not just bookkeeping.
        """
        if self.min_admit_rate <= 0.0:
            return outcomes
        breakdown_admitted = self._admitted_by_name()
        out: List[EventOutcome] = []
        reverted = False
        for outcome in outcomes:
            event = outcome.event
            if (
                outcome.accepted
                and isinstance(event, CommodityArrival)
                and event.commodity is not None
                and breakdown_admitted.get(event.commodity.name, 0.0)
                < self.min_admit_rate
            ):
                name = event.commodity.name
                try:
                    self._apply_delta(
                        compile_event(
                            self.ext,
                            CommodityDeparture(at_iteration=0, commodity=name),
                        )
                    )
                except ModelError:
                    out.append(outcome)  # cannot revert: keep the admit
                    continue
                reverted = True
                self.inst.count("serve.admits_reverted")
                out.append(
                    EventOutcome(
                        event=event,
                        accepted=False,
                        epoch=0,
                        error=(
                            f"admitted rate below min_admit_rate="
                            f"{self.min_admit_rate:g}"
                        ),
                    )
                )
            else:
                out.append(outcome)
        if reverted:
            self._shed()
            self._refine(self.refine_iterations)
        return out

    def _admitted_by_name(self) -> Dict[str, float]:
        solution = build_solution(
            self.ext, self.routing, self.config.cost_model,
            method="gradient-serve",
        )
        return solution.admitted_by_name

    def _publish(self, batch_size: int) -> EpochSnapshot:
        with self.inst.phase("serve.publish"):
            solution = build_solution(
                self.ext,
                self.routing,
                self.config.cost_model,
                method="gradient-serve",
                iterations=self._refined_total,
            )
            report: Optional[ValidationReport] = None
            if self.validate_epochs:
                checker = InvariantChecker(
                    self.ext, checks=self.checks, instrumentation=self.inst
                )
                report = checker.check_solution(solution)
                if not report.passed:
                    self.inst.count("serve.epoch_validation_failures")
                    failed = ", ".join(report.failed_names)
                    raise ServeError(
                        f"epoch {self.current_epoch()} failed validation "
                        f"({failed}); not published"
                    )
            self._seq += 1
            snapshot = EpochSnapshot(
                epoch=self.current_epoch(),
                seq=self._seq,
                utility=solution.utility,
                max_utilization=feasibility_report(
                    self.ext, self.routing
                ).max_utilization,
                admitted=solution.admitted_by_name,
                solution=solution,
                validation=report,
                batch_size=batch_size,
                refine_iterations=self._refined_total,
            )
        self._snapshot = snapshot
        self.inst.count("serve.epochs_published")
        self.inst.gauge("serve.published_epoch", float(snapshot.epoch))
        self.inst.gauge("serve.utility", snapshot.utility)
        if self.inst.enabled:
            self.inst.registry.histogram("serve.batch_size").observe(
                float(batch_size)
            )
            self.inst.event(
                "serve.publish",
                epoch=snapshot.epoch,
                seq=snapshot.seq,
                utility=snapshot.utility,
                batch_size=batch_size,
            )
        return snapshot

    def close(self) -> None:
        """Release the execution backend (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._owns_backend:
                self.backend.close()
