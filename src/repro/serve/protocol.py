"""The ``repro.serve/1`` wire protocol: newline-delimited JSON over TCP.

One request per line, one response per line, in request order.  Requests
carry a client-chosen ``id`` that the response echoes, so clients may
*pipeline* -- write many requests before reading any response -- which is
how a single connection sustains hundreds of events per second through a
batch window (see docs/serving.md).

Request shape::

    {"op": "demand", "id": 7, "commodity": "c1", "rate": 3.5}\n

Response shape::

    {"schema": "repro.serve/1", "id": 7, "ok": true, "op": "demand",
     "decision": "admit", "epoch": 12, "current_epoch": 12, ...}\n

Ops
---
``hello``      server + model summary (includes the full model spec, so a
               load driver can generate replayable traces against it)
``stats``      epoch, utility, admitted rates, serve counters (read-only,
               answered immediately from the latest published epoch)
``admit``      a new stream session arrives (``commodity``: the spec dict
               of :func:`repro.io.commodity_to_dict`)
``depart``     session leaves (``commodity``: name)
``demand``     session changes its offered rate (``commodity``, ``rate``)
``capacity``   node compute budget changes (``node``, ``capacity``)
``link_down``  physical link fails (``link``: [tail, head])
``node_down``  processing node fails (``node``)
``shutdown``   drain: finish every in-flight request, then close

Error responses set ``ok: false`` and carry ``error.type`` /
``error.code`` / ``error.message``; the codes follow HTTP idiom --
``bad_request`` (400), ``overloaded`` (429, request-queue backpressure),
``unavailable`` (503, background optimizer down).  A *rejected* admission
is **not** an error: the response has ``ok: true`` and
``decision: "reject"``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict

from repro.exceptions import ServeRequestError
from repro.io import commodity_from_dict, commodity_to_dict
from repro.online.events import (
    CapacityChange,
    CommodityArrival,
    CommodityDeparture,
    DemandChange,
    LinkFailure,
    NetworkEvent,
    NodeFailure,
)

__all__ = [
    "SERVE_SCHEMA",
    "MAX_LINE_BYTES",
    "EVENT_OPS",
    "READ_OPS",
    "Request",
    "parse_request",
    "encode_request",
    "encode_response",
    "decode_response",
    "error_response",
    "request_to_event",
    "event_to_request",
]

SERVE_SCHEMA = "repro.serve/1"

# one request must fit one line; a commodity spec for a few thousand nodes
# is ~100 KB of JSON, so 4 MB is generous without letting a broken client
# buffer the server into the ground
MAX_LINE_BYTES = 4 * 1024 * 1024

# ops that mutate the model (batched through the window) vs read-only ops
# (answered immediately from the latest published epoch)
EVENT_OPS = ("admit", "depart", "demand", "capacity", "link_down", "node_down")
READ_OPS = ("hello", "stats")
CONTROL_OPS = ("shutdown",)

ERROR_CODES = {"bad_request": 400, "overloaded": 429, "unavailable": 503}


@dataclass(frozen=True)
class Request:
    """One parsed request line."""

    op: str
    id: Any = None
    payload: Dict[str, Any] = field(default_factory=dict)

    @property
    def is_event(self) -> bool:
        return self.op in EVENT_OPS


def parse_request(line: bytes) -> Request:
    """Parse one request line; raises :class:`ServeRequestError` on junk."""
    if len(line) > MAX_LINE_BYTES:
        raise ServeRequestError(
            f"request line exceeds {MAX_LINE_BYTES} bytes"
        )
    try:
        doc = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ServeRequestError(f"request is not valid JSON: {exc}") from exc
    if not isinstance(doc, dict):
        raise ServeRequestError("request must be a JSON object")
    op = doc.get("op")
    if op not in EVENT_OPS + READ_OPS + CONTROL_OPS:
        raise ServeRequestError(
            f"unknown op {op!r}; expected one of "
            f"{sorted(EVENT_OPS + READ_OPS + CONTROL_OPS)}"
        )
    payload = {k: v for k, v in doc.items() if k not in ("op", "id")}
    return Request(op=op, id=doc.get("id"), payload=payload)


def encode_request(op: str, id: Any = None, **payload: Any) -> bytes:
    """One request line (client side)."""
    doc: Dict[str, Any] = {"op": op}
    if id is not None:
        doc["id"] = id
    doc.update(payload)
    return json.dumps(doc).encode() + b"\n"


def encode_response(
    request_id: Any, op: str, ok: bool = True, **fields: Any
) -> bytes:
    """One response line (server side)."""
    doc: Dict[str, Any] = {"schema": SERVE_SCHEMA, "id": request_id, "op": op,
                           "ok": ok}
    doc.update(fields)
    return json.dumps(doc).encode() + b"\n"


def decode_response(line: bytes) -> Dict[str, Any]:
    """Parse one response line; raises :class:`ServeRequestError` on junk."""
    try:
        doc = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ServeRequestError(f"response is not valid JSON: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("schema") != SERVE_SCHEMA:
        raise ServeRequestError(
            f"response is not a {SERVE_SCHEMA} document: {line[:200]!r}"
        )
    return doc


def error_response(
    request_id: Any, op: str, error_type: str, message: str
) -> bytes:
    """An ``ok: false`` response line with an HTTP-idiom error code."""
    return encode_response(
        request_id,
        op,
        ok=False,
        error={
            "type": error_type,
            "code": ERROR_CODES.get(error_type, 500),
            "message": message,
        },
    )


def _require(payload: Dict[str, Any], key: str, kind: Any) -> Any:
    value = payload.get(key)
    if (
        not isinstance(value, kind)
        or isinstance(value, bool)
        or (kind is str and not value)
    ):
        wanted = getattr(kind, "__name__", None) or "number"
        raise ServeRequestError(f"field {key!r} must be a non-empty {wanted}")
    return value


def request_to_event(request: Request, at_iteration: int = 0) -> NetworkEvent:
    """Compile an event-op request into the matching online event.

    ``at_iteration`` is the model's notion of logical time; the daemon
    passes its current epoch so traces stay replayable offline.
    """
    op, payload = request.op, request.payload
    try:
        if op == "admit":
            spec = payload.get("commodity")
            if not isinstance(spec, dict):
                raise ServeRequestError(
                    "admit needs a 'commodity' spec object "
                    "(repro.io.commodity_to_dict format)"
                )
            return CommodityArrival(
                at_iteration=at_iteration, commodity=commodity_from_dict(spec)
            )
        if op == "depart":
            return CommodityDeparture(
                at_iteration=at_iteration,
                commodity=_require(payload, "commodity", str),
            )
        if op == "demand":
            return DemandChange(
                at_iteration=at_iteration,
                commodity=_require(payload, "commodity", str),
                new_rate=float(_require(payload, "rate", (int, float))),
            )
        if op == "capacity":
            return CapacityChange(
                at_iteration=at_iteration,
                node=_require(payload, "node", str),
                new_capacity=float(_require(payload, "capacity", (int, float))),
            )
        if op == "link_down":
            link = payload.get("link")
            if (
                not isinstance(link, (list, tuple))
                or len(link) != 2
                or not all(isinstance(x, str) and x for x in link)
            ):
                raise ServeRequestError(
                    "link_down needs 'link': [tail, head]"
                )
            return LinkFailure(
                at_iteration=at_iteration, link=(link[0], link[1])
            )
        if op == "node_down":
            return NodeFailure(
                at_iteration=at_iteration, node=_require(payload, "node", str)
            )
    except ServeRequestError:
        raise
    except Exception as exc:  # bad spec contents (utility, edges, rates...)
        raise ServeRequestError(f"invalid {op} request: {exc}") from exc
    raise ServeRequestError(f"op {request.op!r} is not an event op")


def event_to_request(
    event: NetworkEvent, id: Any = None
) -> "tuple[str, Dict[str, Any]]":
    """The ``(op, payload)`` pair that replays ``event`` over the wire.

    The inverse of :func:`request_to_event` (modulo ``at_iteration``, which
    the server re-stamps); used by the load driver to replay churn traces.
    """
    if isinstance(event, CommodityArrival):
        assert event.commodity is not None
        return "admit", {"commodity": commodity_to_dict(event.commodity)}
    if isinstance(event, CommodityDeparture):
        return "depart", {"commodity": event.commodity}
    if isinstance(event, DemandChange):
        return "demand", {"commodity": event.commodity, "rate": event.new_rate}
    if isinstance(event, CapacityChange):
        return "capacity", {"node": event.node, "capacity": event.new_capacity}
    if isinstance(event, LinkFailure):
        return "link_down", {"link": list(event.link)}
    if isinstance(event, NodeFailure):
        return "node_down", {"node": event.node}
    raise ServeRequestError(f"unknown event type {type(event).__name__}")
