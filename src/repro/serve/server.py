"""``repro.serve``: the admission-control daemon.

:class:`AdmissionServer` is an asyncio TCP server speaking ``repro.serve/1``
(:mod:`repro.serve.protocol`).  The request path never computes: read ops
are answered straight from the latest published :class:`~repro.serve.
session.EpochSnapshot`, and event ops are enqueued into a bounded
:class:`~repro.serve.batching.BatchQueue` whose drained batches a single
background *optimizer task* pushes through :meth:`ServeSession.
process_batch` on a dedicated worker thread (numpy releases the GIL, so the
event loop keeps answering while the model re-optimises).  Connections
pipeline freely -- responses are written strictly in request order per
connection.

Failure containment:

* a malformed line costs one ``bad_request`` response, never the server;
* a full queue costs an immediate ``overloaded`` (429) response --
  backpressure, not buffering;
* an epoch that fails the invariant audit is **not published**: its batch
  gets ``unavailable`` (503) responses while reads keep the last good
  epoch and the daemon keeps serving;
* a crash of the optimizer task marks the daemon faulted: every in-flight
  and subsequent event request gets an immediate 503 instead of a hang,
  and reads keep working.

Graceful shutdown (the ``shutdown`` op or :meth:`AdmissionServer.drain`)
stops the listener, flushes every already-enqueued request through the
optimizer, answers it, then tears the session and worker pool down.

:class:`ServerThread` embeds the daemon in a plain thread for tests,
benchmarks, and examples.
"""

from __future__ import annotations

import asyncio
import gc
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.exceptions import ServeError, ServeRequestError
from repro.io import network_to_dict
from repro.obs.instrumentation import NULL_INSTRUMENTATION
from repro.online.events import (
    CommodityArrival,
    CommodityDeparture,
    DemandChange,
)
from repro.serve import protocol
from repro.serve.batching import BatchQueue, PendingEvent
from repro.serve.session import ServeSession

__all__ = ["ServeConfig", "AdmissionServer", "ServerThread"]


@dataclass(frozen=True)
class ServeConfig:
    """Deployment knobs of the daemon (see docs/serving.md)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0: ephemeral, the bound port lands in server.port
    batch_window: float = 0.020  # seconds requests coalesce per batch
    max_batch: int = 64  # events per batch cap
    queue_limit: int = 1024  # pending (unanswered) event requests
    refine_iterations: int = 8  # gradient steps per published epoch
    warmup_iterations: int = 200  # initial convergence before serving
    validate_epochs: bool = True  # InvariantChecker audit before publish
    min_admit_rate: float = 0.0  # revert arrivals admitted below this rate

    def __post_init__(self) -> None:
        if self.batch_window < 0:
            raise ServeError("batch_window must be >= 0")
        if self.max_batch < 1:
            raise ServeError("max_batch must be >= 1")
        if self.queue_limit < 1:
            raise ServeError("queue_limit must be >= 1")


class AdmissionServer:
    """The daemon: one live session, one optimizer task, many connections."""

    def __init__(
        self,
        network: Any,
        config: Optional[ServeConfig] = None,
        options: Any = None,
        instrumentation: Any = None,
        session: Optional[ServeSession] = None,
    ) -> None:
        self.config = config or ServeConfig()
        self.inst = (
            instrumentation if instrumentation is not None else NULL_INSTRUMENTATION
        )
        self.network = network
        self.session = session or ServeSession(
            network,
            options,
            refine_iterations=self.config.refine_iterations,
            warmup_iterations=self.config.warmup_iterations,
            validate_epochs=self.config.validate_epochs,
            min_admit_rate=self.config.min_admit_rate,
            instrumentation=self.inst,
        )
        self.port: Optional[int] = None
        self.stats: Dict[str, int] = {
            "requests_total": 0,
            "events_accepted": 0,
            "events_rejected": 0,
            "overloaded": 0,
            "bad_requests": 0,
            "unavailable": 0,
            "batches": 0,
            "validation_failures": 0,
        }
        self._queue = BatchQueue(limit=self.config.queue_limit)
        self._server: Optional[asyncio.AbstractServer] = None
        self._optimizer: Optional[asyncio.Task] = None
        # one dedicated thread: batches are strictly ordered, and the model
        # is single-writer by design
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-opt"
        )
        self._fault: Optional[BaseException] = None
        self._gc_frozen = False
        self._draining = False
        self._writers: set = set()
        self._closed = asyncio.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    # -- lifecycle ----------------------------------------------------------------

    async def start(self) -> int:
        """Warm the model up, bind the socket, start the optimizer task."""
        self._loop = asyncio.get_running_loop()
        if self.session.snapshot is None:
            await self._loop.run_in_executor(
                self._executor, self.session.warmup
            )
        # GC policy: everything alive after warm-up (the model, the warm
        # backend, the event loop) is long-lived; freezing it out of the
        # collector removes multi-10 ms gen-2 pauses from the publish loop.
        # drain() reverses this, so embedded servers do not pin the heap.
        gc.collect()
        gc.freeze()
        self._gc_frozen = True
        self._server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port,
            limit=protocol.MAX_LINE_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._optimizer = asyncio.ensure_future(self._optimizer_loop())
        self.inst.event(
            "serve.start", host=self.config.host, port=self.port,
            batch_window=self.config.batch_window,
        )
        return self.port

    async def wait_closed(self) -> None:
        await self._closed.wait()

    async def drain(self) -> None:
        """Graceful shutdown: answer everything enqueued, then stop."""
        if self._draining:
            await self._closed.wait()
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
        # flush: the optimizer keeps draining batches until nothing pends
        while self._queue.pending > 0 and self._fault is None:
            await asyncio.sleep(0.002)
        if self._optimizer is not None:
            self._optimizer.cancel()
            try:
                await self._optimizer
            except (asyncio.CancelledError, Exception):
                pass
        if self._server is not None:
            await self._server.wait_closed()
        # close surviving client transports while the loop is still alive:
        # transport close flushes buffered responses then sends FIN, so a
        # client that raced the shutdown sees EOF instead of a socket that
        # silently outlives the daemon thread
        for writer in list(self._writers):
            writer.close()
        self.session.close()
        self._executor.shutdown(wait=False)
        if self._gc_frozen:
            gc.unfreeze()
            self._gc_frozen = False
        self.inst.event("serve.drained", **{k: v for k, v in self.stats.items()})
        self._closed.set()

    # -- the optimizer task -------------------------------------------------------

    async def _optimizer_loop(self) -> None:
        assert self._loop is not None
        window, cap = self.config.batch_window, self.config.max_batch
        collector: Optional[asyncio.Task] = None
        try:
            while self._fault is None:
                if collector is None:
                    collector = asyncio.ensure_future(
                        self._queue.collect(window, cap)
                    )
                batch = await collector
                # collect the next batch while this one optimises: the
                # window timer overlaps with processing, so a saturated
                # pipe pays max(window, processing) per batch, not the sum
                collector = asyncio.ensure_future(
                    self._queue.collect(window, cap)
                )
                await self._process_batch(batch)
        finally:
            if collector is not None:
                collector.cancel()  # cancellation re-queues partial batches
                try:
                    await collector
                except (asyncio.CancelledError, Exception):
                    pass
            if self._fault is not None:
                self._fail_batch(
                    self._queue.drain_nowait(),
                    f"optimizer crashed: {self._fault!r}",
                )

    async def _process_batch(self, batch: List[PendingEvent]) -> None:
        assert self._loop is not None
        events = [p.event for p in batch]
        try:
            outcomes, snapshot = await self._loop.run_in_executor(
                self._executor, self.session.process_batch, events
            )
        except ServeError as exc:
            # the epoch failed its invariant audit: not published; the
            # batch is answered 503, the daemon keeps serving reads from
            # the last good epoch and stays up for the next batch
            self.stats["validation_failures"] += 1
            self._fail_batch(batch, str(exc))
            return
        except asyncio.CancelledError:
            raise
        except BaseException as exc:  # optimizer crash: fault the daemon
            self._fault = exc
            self.inst.event("serve.fault", error=repr(exc))
            self._fail_batch(batch, f"optimizer crashed: {exc!r}")
            # anything already enqueued (or held by the concurrent
            # collector) is answered by the optimizer loop's teardown --
            # 503, never a hang
            return
        self.stats["batches"] += 1
        now = time.monotonic()
        for pending, outcome in zip(batch, outcomes):
            self.stats[
                "events_accepted" if outcome.accepted else "events_rejected"
            ] += 1
            if self.inst.enabled and pending.enqueued_at:
                self.inst.registry.histogram("serve.request.seconds").observe(
                    now - pending.enqueued_at
                )
            if not pending.future.done():
                pending.future.set_result(
                    self._event_response(pending.request, outcome, snapshot)
                )
        self._queue.task_done(len(batch))

    def _fail_batch(self, batch: List[PendingEvent], message: str) -> None:
        self.stats["unavailable"] += len(batch)
        for pending in batch:
            if not pending.future.done():
                pending.future.set_result(
                    protocol.error_response(
                        pending.request.id, pending.request.op,
                        "unavailable", message,
                    )
                )
        self._queue.task_done(len(batch))

    # -- response composition -----------------------------------------------------

    def _event_response(
        self, request: protocol.Request, outcome: Any, snapshot: Any
    ) -> bytes:
        fields: Dict[str, Any] = {
            "decision": "admit" if outcome.accepted else "reject",
            "epoch": snapshot.epoch,
            "seq": snapshot.seq,
            "current_epoch": self.session.current_epoch(),
            "utility": snapshot.utility,
        }
        if not outcome.accepted:
            fields["reason"] = outcome.error
        if outcome.dropped_commodities:
            fields["dropped_commodities"] = list(outcome.dropped_commodities)
        name = self._event_commodity(outcome.event)
        if name is not None:
            fields["commodity"] = name
            if name in snapshot.admitted:
                fields["admitted_rate"] = snapshot.admitted[name]
        return protocol.encode_response(request.id, request.op, **fields)

    @staticmethod
    def _event_commodity(event: Any) -> Optional[str]:
        if isinstance(event, CommodityArrival) and event.commodity is not None:
            return event.commodity.name
        if isinstance(event, (CommodityDeparture, DemandChange)):
            return event.commodity
        return None

    def _read_response(self, request: protocol.Request) -> bytes:
        snapshot = self.session.snapshot
        if snapshot is None:
            return protocol.error_response(
                request.id, request.op, "unavailable", "no epoch published yet"
            )
        fields: Dict[str, Any] = {
            "epoch": snapshot.epoch,
            "seq": snapshot.seq,
            "current_epoch": self.session.current_epoch(),
            "utility": snapshot.utility,
        }
        if request.op == "hello":
            fields["server"] = {
                "batch_window": self.config.batch_window,
                "max_batch": self.config.max_batch,
                "queue_limit": self.config.queue_limit,
                "refine_iterations": self.config.refine_iterations,
                "validate_epochs": self.config.validate_epochs,
            }
            fields["model"] = network_to_dict(self.session.ext.stream_network)
        else:  # stats
            fields["max_utilization"] = snapshot.max_utilization
            fields["admitted"] = snapshot.admitted
            fields["pending"] = self._queue.pending
            fields["healthy"] = self._fault is None
            fields["draining"] = self._draining
            fields["stats"] = dict(self.stats)
            fields["validated"] = snapshot.validation is not None and bool(
                snapshot.validation.passed
            )
        return protocol.encode_response(request.id, request.op, **fields)

    # -- connection handling ------------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        slots: "asyncio.Queue[Optional[asyncio.Future]]" = asyncio.Queue()
        writer_task = asyncio.ensure_future(self._write_loop(slots, writer))
        assert self._loop is not None
        self._writers.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, ValueError):
                    # ValueError: the stream limit (MAX_LINE_BYTES) blew up
                    break
                except asyncio.CancelledError:
                    # loop teardown mid-read (drain with the client still
                    # connected): end the task quietly, the finally below
                    # closes the transport
                    break
                if not line:
                    break
                if line.strip() == b"":
                    continue
                self.stats["requests_total"] += 1
                slot: asyncio.Future = self._loop.create_future()
                await slots.put(slot)
                if self._dispatch(line, slot):
                    break  # shutdown requested: stop reading this connection
        finally:
            self._writers.discard(writer)
            # teardown must not leak a CancelledError out of the task: the
            # streams connection callback would log it as an error when the
            # loop shuts down mid-close (e.g. right after a shutdown ack)
            try:
                await slots.put(None)
                await writer_task
            except (Exception, asyncio.CancelledError):
                pass
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _write_loop(
        self, slots: "asyncio.Queue[Optional[asyncio.Future]]",
        writer: asyncio.StreamWriter,
    ) -> None:
        """Write responses strictly in request order for this connection."""
        while True:
            slot = await slots.get()
            if slot is None:
                return
            data = await slot
            try:
                writer.write(data)
                await writer.drain()
            except (ConnectionError, OSError):
                return

    def _dispatch(self, line: bytes, slot: asyncio.Future) -> bool:
        """Route one request line; returns True when the connection should
        stop reading (shutdown)."""
        try:
            request = protocol.parse_request(line)
        except ServeRequestError as exc:
            self.stats["bad_requests"] += 1
            slot.set_result(
                protocol.error_response(
                    _best_effort_id(line), "?", "bad_request", str(exc)
                )
            )
            return False

        if request.op in protocol.READ_OPS:
            slot.set_result(self._read_response(request))
            return False

        if request.op == "shutdown":
            asyncio.ensure_future(self._shutdown_and_ack(request, slot))
            return True

        # event op
        try:
            event = protocol.request_to_event(
                request, at_iteration=self.session.current_epoch()
            )
        except ServeRequestError as exc:
            self.stats["bad_requests"] += 1
            slot.set_result(
                protocol.error_response(
                    request.id, request.op, "bad_request", str(exc)
                )
            )
            return False
        if self._fault is not None:
            self.stats["unavailable"] += 1
            slot.set_result(
                protocol.error_response(
                    request.id, request.op, "unavailable",
                    f"optimizer is down: {self._fault!r}",
                )
            )
            return False
        if self._draining:
            self.stats["unavailable"] += 1
            slot.set_result(
                protocol.error_response(
                    request.id, request.op, "unavailable", "server is draining"
                )
            )
            return False
        pending = PendingEvent(
            request=request, event=event, future=slot,
            enqueued_at=time.monotonic(),
        )
        if not self._queue.try_put(pending):
            self.stats["overloaded"] += 1
            slot.set_result(
                protocol.error_response(
                    request.id, request.op, "overloaded",
                    f"request queue is full ({self.config.queue_limit} pending)",
                )
            )
        return False

    async def _shutdown_and_ack(
        self, request: protocol.Request, slot: asyncio.Future
    ) -> None:
        await self.drain()
        snapshot = self.session.snapshot
        slot.set_result(
            protocol.encode_response(
                request.id, "shutdown",
                epoch=snapshot.epoch if snapshot else 0,
                stats=dict(self.stats),
            )
        )


def _best_effort_id(line: bytes) -> Any:
    """Pull a request id out of a line that failed strict parsing."""
    try:
        doc = json.loads(line)
        if isinstance(doc, dict):
            return doc.get("id")
    except Exception:
        pass
    return None


class ServerThread:
    """Run an :class:`AdmissionServer` on a background thread.

    The embedding used by the tests, the serving benchmark, and
    ``examples/serve_demo.py``::

        with ServerThread(network) as port:
            with ServeClient("127.0.0.1", port) as client:
                client.demand("c1", 4.0)

    ``start()`` blocks until the daemon finished warm-up and bound its
    port; ``stop()`` drains gracefully.
    """

    def __init__(
        self,
        network: Any,
        config: Optional[ServeConfig] = None,
        options: Any = None,
        instrumentation: Any = None,
        session: Optional[ServeSession] = None,
    ) -> None:
        self._kwargs = dict(
            network=network, config=config, options=options,
            instrumentation=instrumentation, session=session,
        )
        self.server: Optional[AdmissionServer] = None
        self.port: Optional[int] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._startup_error: Optional[BaseException] = None

    def start(self, timeout: float = 120.0) -> int:
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise ServeError("serve thread failed to start in time")
        if self._startup_error is not None:
            raise ServeError(
                f"serve thread failed to start: {self._startup_error!r}"
            )
        assert self.port is not None
        return self.port

    def _run(self) -> None:
        async def main() -> None:
            try:
                self.server = AdmissionServer(**self._kwargs)
                self._loop = asyncio.get_running_loop()
                self.port = await self.server.start()
            except BaseException as exc:
                self._startup_error = exc
                self._ready.set()
                raise
            self._ready.set()
            await self.server.wait_closed()

        try:
            asyncio.run(main())
        except Exception:
            # startup errors are re-raised in start(); late crashes leave
            # their trace in server.stats / the fault flag
            pass

    def stop(self, timeout: float = 60.0) -> None:
        if (
            self._thread is None
            or self._loop is None
            or self.server is None
            or not self._thread.is_alive()
        ):
            return
        try:
            future = asyncio.run_coroutine_threadsafe(
                self.server.drain(), self._loop
            )
            future.result(timeout=timeout)
        except Exception:
            pass
        self._thread.join(timeout)

    def __enter__(self) -> int:
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
