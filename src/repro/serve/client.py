"""``repro.serve.client``: blocking client and churn-replay load driver.

:class:`ServeClient` is a small synchronous client for the
``repro.serve/1`` protocol -- one socket, newline-delimited JSON, optional
pipelining (write ``N`` requests, then read ``N`` responses in order).
Pipelining is what makes a single connection fast against a batching
server: a 20 ms window caps a strictly request-response client at ~50
events/s, while a pipeline of 16 rides the same window at hundreds.

:func:`replay_trace` is the load driver: it replays a
:func:`repro.scenarios.churn_trace` event timeline against a live daemon,
records one latency sample per event (enqueue to response), and reports
sustained events/sec plus latency quantiles -- the numbers
``benchmarks/bench_serve.py`` gates and ``BENCH_SERVE.json`` records.

Run it from the command line against a running daemon (the driver fetches
the model from ``hello`` and generates a deterministic trace against it)::

    python -m repro.serve.client --port 7471 --events 200 --pipeline 16

or replay a named scenario's compiled timeline against a daemon started
with the same scenario (``repro serve --scenario serve-diurnal-30``)::

    python -m repro.serve.client --port 7471 --scenario serve-diurnal-30
"""

from __future__ import annotations

import argparse
import json
import socket
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.exceptions import ServeError
from repro.serve import protocol

__all__ = ["ServeClient", "ReplayReport", "replay_trace", "main"]


class ServeClient:
    """A blocking ``repro.serve/1`` client over one TCP connection."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 0, timeout: float = 60.0
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        # pipelined requests are many small writes: without TCP_NODELAY,
        # Nagle holds them back waiting for a delayed ACK the batching
        # server only sends ~40 ms later, fragmenting every batch
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._file = self._sock.makefile("rb")
        self._next_id = 0

    # -- plumbing -----------------------------------------------------------------

    def send(self, op: str, **payload: Any) -> int:
        """Write one request; returns its id (read later, in order)."""
        self._next_id += 1
        request_id = self._next_id
        self._sock.sendall(protocol.encode_request(op, id=request_id, **payload))
        return request_id

    def read(self) -> Dict[str, Any]:
        """Read the next response line (in request order)."""
        line = self._file.readline()
        if not line:
            raise ServeError("server closed the connection")
        return protocol.decode_response(line)

    def request(self, op: str, **payload: Any) -> Dict[str, Any]:
        """One strict request/response round-trip."""
        self.send(op, **payload)
        return self.read()

    # -- the ops ------------------------------------------------------------------

    def hello(self) -> Dict[str, Any]:
        return self.request("hello")

    def stats(self) -> Dict[str, Any]:
        return self.request("stats")

    def admit(self, commodity: Dict[str, Any]) -> Dict[str, Any]:
        """Request admission of a new session (``commodity``: the spec dict
        of :func:`repro.io.commodity_to_dict`)."""
        return self.request("admit", commodity=commodity)

    def depart(self, commodity: str) -> Dict[str, Any]:
        return self.request("depart", commodity=commodity)

    def demand(self, commodity: str, rate: float) -> Dict[str, Any]:
        return self.request("demand", commodity=commodity, rate=rate)

    def capacity(self, node: str, capacity: float) -> Dict[str, Any]:
        return self.request("capacity", node=node, capacity=capacity)

    def link_down(self, tail: str, head: str) -> Dict[str, Any]:
        return self.request("link_down", link=[tail, head])

    def node_down(self, node: str) -> Dict[str, Any]:
        return self.request("node_down", node=node)

    def shutdown(self) -> Dict[str, Any]:
        return self.request("shutdown")

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def _quantile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank quantile of an already-sorted sample (0 if empty)."""
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1, max(0, int(q * len(sorted_values))))
    return sorted_values[rank]


@dataclass
class ReplayReport:
    """What one load-driver run measured."""

    events: int = 0
    accepted: int = 0
    rejected: int = 0
    errors: int = 0
    elapsed_seconds: float = 0.0
    latencies: List[float] = field(default_factory=list)
    final_epoch: int = 0
    max_staleness: int = 0  # max(current_epoch - answered epoch) observed

    @property
    def events_per_second(self) -> float:
        return self.events / self.elapsed_seconds if self.elapsed_seconds else 0.0

    @property
    def p50_ms(self) -> float:
        return 1e3 * _quantile(sorted(self.latencies), 0.50)

    @property
    def p99_ms(self) -> float:
        return 1e3 * _quantile(sorted(self.latencies), 0.99)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": "repro.serve.replay/1",
            "events": self.events,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "errors": self.errors,
            "elapsed_seconds": self.elapsed_seconds,
            "events_per_second": self.events_per_second,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
            "final_epoch": self.final_epoch,
            "max_staleness": self.max_staleness,
        }


def replay_trace(
    client: ServeClient,
    events: Sequence[Any],
    pipeline: int = 16,
    on_response: Optional[Any] = None,
) -> ReplayReport:
    """Replay an event timeline, pipelined ``pipeline`` requests deep.

    Each event's latency is measured from the moment its request hits the
    socket to the moment its response is read; with pipelining those
    windows overlap, which is exactly how a real fan-in of independent
    clients loads the daemon.
    """
    if pipeline < 1:
        raise ServeError("pipeline must be >= 1")
    report = ReplayReport()
    started = time.perf_counter()
    in_flight: List[float] = []

    def drain_one() -> None:
        sent_at = in_flight.pop(0)
        response = client.read()
        report.latencies.append(time.perf_counter() - sent_at)
        report.events += 1
        if not response.get("ok"):
            report.errors += 1
        elif response.get("decision") == "reject":
            report.rejected += 1
        else:
            report.accepted += 1
        answered = response.get("epoch")
        current = response.get("current_epoch")
        if isinstance(answered, int):
            report.final_epoch = max(report.final_epoch, answered)
            if isinstance(current, int):
                report.max_staleness = max(
                    report.max_staleness, current - answered
                )
        if on_response is not None:
            on_response(response)

    for event in events:
        op, payload = protocol.event_to_request(event)
        in_flight.append(time.perf_counter())
        client.send(op, **payload)
        while len(in_flight) >= pipeline:
            drain_one()
    while in_flight:
        drain_one()
    report.elapsed_seconds = time.perf_counter() - started
    return report


def _generate_trace(model: Dict[str, Any], num_events: int, seed: int):
    """A deterministic churn trace against the server's own model."""
    from repro.io import network_from_dict
    from repro.scenarios import ChurnSpec, churn_trace

    network = network_from_dict(model)
    return churn_trace(network, ChurnSpec(num_events=num_events), seed=seed)


def _scenario_trace(name: str, seed: Optional[int]):
    """The compiled event timeline of a named scenario.

    Replays correctly against a daemon started with ``repro serve
    --scenario <name>`` (same seed): both sides compile the same spec, so
    the trace references exactly the commodities/nodes the server holds.
    """
    from repro.scenarios import scenario

    return scenario(name, seed=seed).compile().events


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.serve.client",
        description="Load driver: replay a generated churn trace against a "
        "running repro serve daemon and report throughput/latency.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--events", type=int, default=200)
    parser.add_argument("--pipeline", type=int, default=16)
    parser.add_argument(
        "--seed", type=int, default=None,
        help="trace seed (default: 0, or the scenario's pinned seed)",
    )
    parser.add_argument(
        "--scenario", default=None, metavar="NAME",
        help="replay the named scenario's compiled trace instead of a "
        "generated churn trace (start the daemon with "
        "'repro serve --scenario NAME' so the models match; "
        "--events is ignored)",
    )
    parser.add_argument(
        "--shutdown", action="store_true",
        help="send a shutdown (drain) request after the replay",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the replay report as a JSON document",
    )
    args = parser.parse_args(argv)

    with ServeClient(args.host, args.port) as client:
        hello = client.hello()
        if args.scenario is not None:
            events = _scenario_trace(args.scenario, args.seed)
        else:
            events = _generate_trace(
                hello["model"], args.events, args.seed or 0
            )
        report = replay_trace(client, events, pipeline=args.pipeline)
        stats = client.stats()
        if args.shutdown:
            client.shutdown()

    if args.json:
        doc = report.to_dict()
        doc["server_stats"] = stats.get("stats", {})
        print(json.dumps(doc, indent=2))
    else:
        print(
            f"replayed {report.events} events in "
            f"{report.elapsed_seconds:.2f}s: "
            f"{report.events_per_second:.1f} events/s, "
            f"p50 {report.p50_ms:.1f} ms, p99 {report.p99_ms:.1f} ms, "
            f"{report.accepted} admitted / {report.rejected} rejected / "
            f"{report.errors} errors, final epoch {report.final_epoch}"
        )
    return 0 if report.errors == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
