"""The curated public surface of the reproduction.

Import from here.  Everything in ``__all__`` is stable API: the network
builders, the solver entry point with its unified
:class:`~repro.options.SolveOptions`, and the commodity-major
:class:`~repro.core.state.ModelState` array core that PR 7 put behind the
hot path.

The old per-commodity object-walk accessors (``solve_traffic``,
``resource_usage``, ``all_marginal_costs``, ``all_edge_marginals``,
``external_inputs``) remain importable from this module for one release,
but raise :class:`DeprecationWarning` on access: their array-backed
replacements live on :class:`ModelState` (see the migration table in
``docs/api.md``).  The originals stay where they always were
(``repro.core.routing`` / ``repro.core.marginals``) for internal use.
"""

from __future__ import annotations

import warnings
from typing import Any

from repro import (
    BackpressureConfig,
    GradientConfig,
    Instrumentation,
    build_extended_network,
    solve,
)
from repro.core import (
    ExtendedNetwork,
    RoutingState,
    Solution,
    StreamNetwork,
    build_solution,
    initial_routing,
)
from repro.core.state import ModelState, active_core, use_array_core
from repro.options import SolveOptions

__all__ = [
    # entry points
    "solve",
    "SolveOptions",
    # model construction
    "StreamNetwork",
    "ExtendedNetwork",
    "build_extended_network",
    "initial_routing",
    "RoutingState",
    "Solution",
    "build_solution",
    # the array core
    "ModelState",
    "active_core",
    "use_array_core",
    # configs / instrumentation
    "GradientConfig",
    "BackpressureConfig",
    "Instrumentation",
]

# Legacy hot-state accessors -> (module path, ModelState replacement).
# Importing one of these from repro.api works for one more release but
# warns; the per-commodity object walks they perform are exactly what the
# commodity-major array core replaced.
_DEPRECATED_HOT_STATE = {
    "solve_traffic": (
        "repro.core.routing",
        "ModelState.of(ext).solve_traffic_into(t_flat, phi_flat)",
    ),
    "resource_usage": (
        "repro.core.routing",
        "ModelState.of(ext).resource_usage(phi_flat, t_flat)",
    ),
    "external_inputs": (
        "repro.core.routing",
        "ModelState.of(ext) + repro.core.routing.external_inputs_rows",
    ),
    "all_marginal_costs": (
        "repro.core.marginals",
        "ModelState.of(ext).marginal_costs(phi_flat, dadf)",
    ),
    "all_edge_marginals": (
        "repro.core.marginals",
        "ModelState.of(ext).edge_marginals_dense(dadf, dadr_flat)",
    ),
}


def __getattr__(name: str) -> Any:
    if name in _DEPRECATED_HOT_STATE:
        module_path, replacement = _DEPRECATED_HOT_STATE[name]
        warnings.warn(
            f"importing {name!r} from repro.api is deprecated and will be "
            f"removed next release; use {replacement} (or import the legacy "
            f"walk from {module_path} directly)",
            DeprecationWarning,
            stacklevel=2,
        )
        import importlib

        return getattr(importlib.import_module(module_path), name)
    raise AttributeError(f"module 'repro.api' has no attribute {name!r}")


def __dir__() -> list:
    return sorted(set(__all__) | set(_DEPRECATED_HOT_STATE))
