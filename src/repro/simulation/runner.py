"""Distributed execution of the gradient algorithm over the event engine.

:class:`DistributedGradientRun` instantiates one :class:`NodeAgent` per
extended-graph node and drives the three protocol phases of each iteration
through the deterministic message-passing engine.  It produces the same
iterates as :class:`repro.core.gradient.GradientAlgorithm` (the integration
tests assert bit-identical routing states) while additionally measuring what
only a real message-passing execution can: messages, bytes, and *sequential
rounds* per iteration -- the quantities behind the paper's O(L) vs O(1)
complexity discussion in Section 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.context import IterationContext, build_iteration_context
from repro.core.gradient import GradientConfig, IterationRecord
from repro.core.routing import RoutingState, initial_routing, utilization_profile
from repro.core.solution import Solution, build_solution
from repro.core.transform import ExtendedNetwork
from repro.exceptions import SimulationError
from repro.simulation.agent import NodeAgent
from repro.simulation.engine import EventEngine
from repro.simulation.metrics import IterationMetrics, PhaseMetrics

__all__ = ["DistributedRunResult", "DistributedGradientRun"]


@dataclass
class DistributedRunResult:
    """Outcome of a distributed run: solution, trajectory, protocol metrics.

    The trajectory mirrors :class:`repro.core.gradient.GradientResult`: a
    ``history`` of :class:`~repro.core.gradient.IterationRecord` entries plus
    the same ndarray accessors (``utilities``, ``costs``,
    ``recorded_iterations``), so analysis code can consume either result
    type interchangeably.
    """

    solution: Solution
    iterations: int
    history: List[IterationRecord]
    metrics: List[IterationMetrics] = field(default_factory=list)

    @property
    def utilities(self) -> np.ndarray:
        return np.array([rec.utility for rec in self.history])

    @property
    def costs(self) -> np.ndarray:
        return np.array([rec.cost for rec in self.history])

    @property
    def recorded_iterations(self) -> np.ndarray:
        return np.array([rec.iteration for rec in self.history])

    @property
    def average_rounds_per_iteration(self) -> float:
        if not self.metrics:
            return 0.0
        return float(np.mean([m.rounds for m in self.metrics]))

    @property
    def average_messages_per_iteration(self) -> float:
        if not self.metrics:
            return 0.0
        return float(np.mean([m.messages for m in self.metrics]))


class DistributedGradientRun:
    """Run the paper's algorithm as an actual message-passing protocol."""

    def __init__(
        self,
        ext: ExtendedNetwork,
        config: Optional[GradientConfig] = None,
        hop_latency: int = 1,
    ):
        self.ext = ext
        self.config = config or GradientConfig()
        self.engine = EventEngine(hop_latency=hop_latency)
        self.agents: List[NodeAgent] = []
        for node in range(ext.num_nodes):
            agent = NodeAgent(
                ext,
                node,
                cost_model=self.config.cost_model,
                eta=self.config.eta,
                traffic_tol=self.config.traffic_tol,
                use_blocking=self.config.use_blocking,
            )
            self.engine.register(node, agent)
            self.agents.append(agent)

    # -- state import/export -----------------------------------------------------------
    def load_routing(self, routing: RoutingState) -> None:
        for agent in self.agents:
            agent.load_routing(routing.phi)

    def export_routing(self) -> RoutingState:
        phi = np.zeros((self.ext.num_commodities, self.ext.num_edges), dtype=float)
        for agent in self.agents:
            agent.export_routing(phi)
        return RoutingState(phi)

    # -- protocol phases -----------------------------------------------------------------
    def _run_phase(self, name: str, begin) -> PhaseMetrics:
        before_msgs = self.engine.metrics.messages_total
        before_bytes = self.engine.metrics.bytes_total
        self.engine.reset_clock()
        for agent in self.agents:
            begin(agent)
        rounds = self.engine.run_until_idle()
        return PhaseMetrics(
            name=name,
            messages=self.engine.metrics.messages_total - before_msgs,
            bytes=self.engine.metrics.bytes_total - before_bytes,
            rounds=rounds,
        )

    def forecast_phase(self) -> PhaseMetrics:
        return self._run_phase(
            "forecast", lambda agent: agent.begin_forecast_phase(self.engine)
        )

    def marginal_phase(self) -> PhaseMetrics:
        return self._run_phase(
            "marginal", lambda agent: agent.begin_marginal_phase(self.engine)
        )

    def update_phase(self) -> PhaseMetrics:
        for agent in self.agents:
            agent.apply_routing_update()
        return PhaseMetrics(name="update", messages=0, bytes=0, rounds=0)

    def iterate(self, iteration: int) -> IterationMetrics:
        """One full iteration: marginal wave, local update, forecast wave."""
        metrics = IterationMetrics(iteration=iteration)
        metrics.phases.append(self.marginal_phase())
        metrics.phases.append(self.update_phase())
        metrics.phases.append(self.forecast_phase())
        return metrics

    # -- full run ------------------------------------------------------------------------
    def run(
        self,
        iterations: int,
        routing: Optional[RoutingState] = None,
        record_every: int = 1,
    ) -> DistributedRunResult:
        """Execute ``iterations`` distributed iterations from a feasible start.

        An initial forecast phase seeds every node's ``t_i(j)`` and ``f_i``
        before the first marginal-cost wave, mirroring the synchronous
        engine's use of the current flow state.
        """
        if iterations < 1:
            raise SimulationError("iterations must be >= 1")
        if routing is None:
            routing = initial_routing(self.ext)
        self.load_routing(routing)
        self.forecast_phase()  # seed t and f

        history: List[IterationRecord] = []
        all_metrics: List[IterationMetrics] = []
        context: Optional[IterationContext] = None
        for iteration in range(1, iterations + 1):
            all_metrics.append(self.iterate(iteration))
            if iteration % record_every == 0 or iteration == iterations:
                snapshot = self.export_routing()
                # one flow solve per record; no derivatives needed here
                context = build_iteration_context(
                    self.ext, snapshot, self.config.cost_model, with_derivatives=False
                )
                history.append(self._record(iteration, context))

        # the loop always records iteration == iterations, so the last
        # context describes the final routing state; reuse its flow solve
        solution = build_solution(
            self.ext,
            context.routing,
            self.config.cost_model,
            method="gradient-distributed",
            iterations=iterations,
            traffic=context.traffic,
        )
        return DistributedRunResult(
            solution=solution,
            iterations=iterations,
            history=history,
            metrics=all_metrics,
        )

    def _record(self, iteration: int, context: IterationContext) -> IterationRecord:
        breakdown = context.breakdown
        util = utilization_profile(context.node_usage, self.ext.capacity)
        return IterationRecord(
            iteration=iteration,
            cost=breakdown.total,
            utility=breakdown.utility,
            max_utilization=float(util.max()) if util.size else 0.0,
            admitted=breakdown.admitted.copy(),
        )
