"""Distributed execution of the gradient algorithm over the event engine.

:class:`DistributedGradientRun` instantiates one :class:`NodeAgent` per
extended-graph node and drives the three protocol phases of each iteration
through the deterministic message-passing engine.  It produces the same
iterates as :class:`repro.core.gradient.GradientAlgorithm` (the integration
tests assert bit-identical routing states) while additionally measuring what
only a real message-passing execution can: messages, bytes, and *sequential
rounds* per iteration -- the quantities behind the paper's O(L) vs O(1)
complexity discussion in Section 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.context import IterationContext
from repro.core.gradient import GradientConfig, IterationRecord
from repro.core.result import RunResultMixin
from repro.core.routing import RoutingState, initial_routing, utilization_profile
from repro.core.solution import Solution, build_solution
from repro.core.transform import ExtendedNetwork
from repro.exceptions import SimulationError
from repro.obs.instrumentation import NULL_INSTRUMENTATION
from repro.simulation.agent import NodeAgent
from repro.simulation.engine import EventEngine
from repro.simulation.metrics import IterationMetrics, PhaseMetrics

__all__ = ["DistributedRunResult", "DistributedGradientRun"]


@dataclass
class DistributedRunResult(RunResultMixin):
    """Outcome of a distributed run: solution, trajectory, protocol metrics.

    Implements the :class:`~repro.core.result.RunResult` protocol with the
    same ``history`` record type as
    :class:`repro.core.gradient.GradientResult`, so analysis code consumes
    either result interchangeably; ``metrics`` adds what only a real
    message-passing execution measures (messages, bytes, rounds).
    """

    solution: Solution
    iterations: int
    history: List[IterationRecord]
    metrics: List[IterationMetrics] = field(default_factory=list)

    @property
    def average_rounds_per_iteration(self) -> float:
        if not self.metrics:
            return 0.0
        return float(np.mean([m.rounds for m in self.metrics]))

    @property
    def average_messages_per_iteration(self) -> float:
        if not self.metrics:
            return 0.0
        return float(np.mean([m.messages for m in self.metrics]))


class DistributedGradientRun:
    """Run the paper's algorithm as an actual message-passing protocol."""

    def __init__(
        self,
        ext: ExtendedNetwork,
        config: Optional[GradientConfig] = None,
        hop_latency: int = 1,
        instrumentation=None,
        backend=None,
    ):
        self.ext = ext
        self.config = config or GradientConfig()
        self.inst = (
            instrumentation if instrumentation is not None else NULL_INSTRUMENTATION
        )
        # the protocol itself runs in the agents; the backend only evaluates
        # the per-record cost snapshots (a parallel one shards that flow solve)
        if backend is None:
            from repro.parallel.backend import SerialBackend

            backend = SerialBackend()
        self.backend = backend
        backend.bind(self.ext, self.config)
        self.engine = EventEngine(hop_latency=hop_latency)
        self.agents: List[NodeAgent] = []
        for node in range(ext.num_nodes):
            agent = NodeAgent(
                ext,
                node,
                cost_model=self.config.cost_model,
                eta=self.config.eta,
                traffic_tol=self.config.traffic_tol,
                use_blocking=self.config.use_blocking,
            )
            self.engine.register(node, agent)
            self.agents.append(agent)

    # -- state import/export -----------------------------------------------------------
    def load_routing(self, routing: RoutingState) -> None:
        for agent in self.agents:
            agent.load_routing(routing.phi)

    def export_routing(self) -> RoutingState:
        phi = np.zeros((self.ext.num_commodities, self.ext.num_edges), dtype=float)
        for agent in self.agents:
            agent.export_routing(phi)
        return RoutingState(phi)

    # -- protocol phases -----------------------------------------------------------------
    def _run_phase(self, name: str, begin) -> PhaseMetrics:
        before_msgs = self.engine.metrics.messages_total
        before_bytes = self.engine.metrics.bytes_total
        self.engine.reset_clock()
        with self.inst.phase(name):
            for agent in self.agents:
                begin(agent)
            rounds = self.engine.run_until_idle()
        metrics = PhaseMetrics(
            name=name,
            messages=self.engine.metrics.messages_total - before_msgs,
            bytes=self.engine.metrics.bytes_total - before_bytes,
            rounds=rounds,
        )
        if self.inst.enabled:
            self.inst.messages(
                name, messages=metrics.messages, bytes=metrics.bytes, rounds=rounds
            )
        return metrics

    def forecast_phase(self) -> PhaseMetrics:
        return self._run_phase(
            "forecast", lambda agent: agent.begin_forecast_phase(self.engine)
        )

    def marginal_phase(self) -> PhaseMetrics:
        return self._run_phase(
            "marginal", lambda agent: agent.begin_marginal_phase(self.engine)
        )

    def update_phase(self) -> PhaseMetrics:
        with self.inst.phase("update"):
            for agent in self.agents:
                agent.apply_routing_update(instrumentation=self.inst)
        return PhaseMetrics(name="update", messages=0, bytes=0, rounds=0)

    def iterate(self, iteration: int) -> IterationMetrics:
        """One full iteration: marginal wave, local update, forecast wave."""
        metrics = IterationMetrics(iteration=iteration)
        metrics.phases.append(self.marginal_phase())
        metrics.phases.append(self.update_phase())
        metrics.phases.append(self.forecast_phase())
        return metrics

    # -- full run ------------------------------------------------------------------------
    def run(
        self,
        iterations: int,
        routing: Optional[RoutingState] = None,
        record_every: int = 1,
        validate=False,
    ) -> DistributedRunResult:
        """Execute ``iterations`` distributed iterations from a feasible start.

        An initial forecast phase seeds every node's ``t_i(j)`` and ``f_i``
        before the first marginal-cost wave, mirroring the synchronous
        engine's use of the current flow state.  ``validate`` (``True`` or
        ``"strict"``) audits the finished result against the invariant
        catalog.
        """
        if iterations < 1:
            raise SimulationError("iterations must be >= 1")
        if routing is None:
            routing = initial_routing(self.ext)
        self.load_routing(routing)
        self.forecast_phase()  # seed t and f

        inst = self.inst
        history: List[IterationRecord] = []
        all_metrics: List[IterationMetrics] = []
        context: Optional[IterationContext] = None
        for iteration in range(1, iterations + 1):
            with inst.phase("iteration", iteration=iteration):
                all_metrics.append(self.iterate(iteration))
            if iteration % record_every == 0 or iteration == iterations:
                snapshot = self.export_routing()
                # one flow solve per record; no derivatives needed here
                context = self.backend.build_context(
                    snapshot, instrumentation=inst, with_derivatives=False
                )
                record = self._record(iteration, context)
                history.append(record)
                if inst.enabled:
                    inst.iteration(
                        iteration,
                        cost=record.cost,
                        utility=record.utility,
                        max_utilization=record.max_utilization,
                    )

        # the loop always records iteration == iterations, so the last
        # context describes the final routing state; reuse its flow solve
        solution = build_solution(
            self.ext,
            context.routing,
            self.config.cost_model,
            method="gradient-distributed",
            iterations=iterations,
            traffic=context.traffic,
        )
        if inst.enabled:
            inst.gauge("iterations_total", iterations)
            inst.gauge("final_utility", solution.utility)
            inst.gauge(
                "rounds_per_iteration",
                float(np.mean([m.rounds for m in all_metrics])),
            )
        result = DistributedRunResult(
            solution=solution,
            iterations=iterations,
            history=history,
            metrics=all_metrics,
        )
        if validate:
            from repro.validate import attach_validation

            attach_validation(result, self.ext, mode=validate, instrumentation=inst)
        return result

    def _record(self, iteration: int, context: IterationContext) -> IterationRecord:
        breakdown = context.breakdown
        util = utilization_profile(context.node_usage, self.ext.capacity)
        return IterationRecord(
            iteration=iteration,
            cost=breakdown.total,
            utility=breakdown.utility,
            max_utilization=float(util.max()) if util.size else 0.0,
            admitted=breakdown.admitted.copy(),
        )
