"""Deterministic event-driven message-passing engine.

A minimal distributed-systems substrate: agents own node-local state and
react to messages; the engine delivers messages over directed channels with
integer latency (default 1 tick per hop).  Determinism is guaranteed by a
(time, sequence) priority order -- two runs of the same protocol produce the
same trajectory bit for bit, which the equivalence tests against the
synchronous engine rely on.

The engine also keeps the metrics the paper's Section-6 complexity argument
needs: messages/bytes delivered, and the *elapsed ticks* of each protocol
phase -- with unit latency this equals the length of the longest dependency
chain, i.e. the O(L) of the marginal-cost wave versus the O(1) of a
buffer-level exchange.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Dict, List, Optional, Protocol, Tuple

from repro.exceptions import SimulationError
from repro.simulation.messages import Message
from repro.simulation.metrics import MessageMetrics

__all__ = ["Agent", "EventEngine"]


class Agent(Protocol):
    """Anything that can receive messages from the engine."""

    def on_message(self, message: Message, engine: "EventEngine") -> None:
        ...


class EventEngine:
    """Priority-queue event loop with per-hop latency and metrics.

    Agents call :meth:`send` from within their handlers; the engine delivers
    in deterministic (time, sequence) order.  :meth:`run_until_idle` drains
    the queue and returns the number of ticks that elapsed -- the sequential
    depth of the phase just executed.
    """

    def __init__(self, hop_latency: int = 1, on_send: Optional[Callable] = None):
        if hop_latency < 1:
            raise SimulationError("hop_latency must be >= 1")
        self.hop_latency = hop_latency
        self.now = 0
        self.metrics = MessageMetrics()
        # optional external sink called with every sent message -- how the
        # observability layer taps the wire without the engine knowing it
        self.on_send = on_send
        self._agents: Dict[int, Agent] = {}
        self._queue: List[Tuple[int, int, int, Message]] = []
        self._sequence = itertools.count()
        self._max_events = 10_000_000

    def register(self, node: int, agent: Agent) -> None:
        if node in self._agents:
            raise SimulationError(f"agent already registered for node {node}")
        self._agents[node] = agent

    def send(self, target: int, message: Message, delay: Optional[int] = None) -> None:
        """Queue ``message`` for ``target`` after ``delay`` ticks (default: one hop)."""
        if target not in self._agents:
            raise SimulationError(f"no agent registered for node {target}")
        if delay is None:
            delay = self.hop_latency
        if delay < 0:
            raise SimulationError("delay must be >= 0")
        self._deliver_later(target, message, delay)
        self.metrics.on_send(message)
        if self.on_send is not None:
            self.on_send(message)

    def _deliver_later(self, target: int, message: Message, delay: int) -> None:
        """Enqueue one delivery (no accounting -- the raw scheduling primitive).

        Subclasses route :meth:`send` through fault-injection layers and
        push each surviving copy here; local timers (ticks) also schedule
        through this path so they never count as network traffic.
        """
        heapq.heappush(
            self._queue, (self.now + delay, next(self._sequence), target, message)
        )

    def run_until_idle(self) -> int:
        """Deliver all queued (and consequent) messages; return elapsed ticks."""
        return self.run_until(None)

    def run_until(self, stop: Optional[Callable[[], bool]]) -> int:
        """Deliver messages until the queue drains or ``stop()`` turns true.

        ``stop`` is checked after each delivery, so the caller can pause the
        simulation at a condition of its own (e.g. "every agent reached
        epoch *m*"), inspect global state, and resume -- the asynchronous
        runner snapshots its trajectory this way.  Returns elapsed ticks.
        """
        start = self.now
        events = 0
        while self._queue:
            events += 1
            if events > self._max_events:
                raise SimulationError(
                    "event budget exceeded; protocol is likely deadlocked "
                    "or livelocked"
                )
            time, __, target, message = heapq.heappop(self._queue)
            self.now = time
            self._agents[target].on_message(message, self)
            if stop is not None and stop():
                break
        return self.now - start

    @property
    def pending(self) -> int:
        return len(self._queue)

    def reset_clock(self) -> None:
        """Zero the clock between phases so each phase's depth is measured."""
        if self._queue:
            raise SimulationError("cannot reset the clock with messages in flight")
        self.now = 0
