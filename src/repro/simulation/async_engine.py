"""Barrier-free asynchronous execution of the paper's gradient protocol.

The synchronous runner (:mod:`repro.simulation.runner`) drives the three
Section-5 phases to completion, one global phase barrier at a time.  The
paper's deployment story, however, is truly distributed per-node agents --
the regime the decentralized mapping papers of Asaduzzaman & Maheswaran
set the bar for: progress and convergence under *delayed, lost, and
reordered* messages, with no coordinator anywhere.  This module stresses
exactly that claim:

* :class:`AsyncNodeAgent` reacts to **individual message deliveries**.  It
  holds the last-known value from every neighbour (stamped with the
  sender's ``seq``/``epoch``, see :mod:`repro.simulation.messages`) and
  advances its own routing fractions ``phi`` whenever its neighbourhood
  view is *fresh enough* under the **bounded-staleness rule**: node ``i``
  at local epoch ``e`` may run a local iteration once every downstream
  marginal report and every upstream forecast carries an epoch stamp
  ``>= max(0, e - staleness)``.  This is the same contract the PR 6
  process backend validates (``staleness=K`` batched dispatch, drift
  gated at :data:`repro.validate.STALENESS_DRIFT_RTOL`), executed here at
  per-message granularity.  A local iteration recomputes eq. (15)'s
  per-edge marginals and eqs. (9)-(11)'s node marginal from the stale
  view, applies the *same* node-local ``Gamma`` kernel as every other
  engine (:func:`repro.core.gradient.apply_gamma_at_node`), refreshes
  eq. (3) traffic / eqs. (4)-(5) usage, and publishes the new values.

* :class:`FaultyChannel` injects per-link integer delay distributions,
  drop probability, duplication, and delay spikes, all drawn from one
  seeded generator -- the same seed replays the same trace bit for bit
  (the chaos soak pins hash-identical final iterates).  Reordering needs
  no knob: unequal delays reorder deliveries on their own.

* **Loss recovery** is sender-retransmit driven by local timers: every
  agent schedules a :class:`~repro.simulation.messages.TickMessage` to
  itself; an agent whose epoch has not advanced since its last tick
  re-publishes its current state with ``retransmit=True``, and any
  receiver of a retransmit answers with its own current values on the
  reverse link.  Under any schedule in which every link eventually
  delivers, the slowest node can therefore always make progress -- there
  is no deadlock by construction, and the engine raises
  :class:`~repro.exceptions.SimulationError` with a per-node diagnosis if
  the queue ever drains with agents still short of their target.

Liveness and skew
-----------------
The bounded-staleness rule never deadlocks: the globally *slowest* node
always has every neighbour at an epoch at least its own, so once their
latest publications arrive (eventual delivery) its freshness predicate is
satisfied.  Conversely a node more than ``staleness`` epochs ahead of a
neighbour it depends on cannot advance, so the epoch skew between
*dependent* nodes is bounded by ``staleness + 1`` -- bounded asynchrony in
the Bertsekas--Tsitsiklis sense, which is what keeps the drift of the
async iterates inside the :data:`~repro.validate.oracle.STALENESS_DRIFT_RTOL`
bound that :meth:`repro.validate.DifferentialOracle.compare_async` gates.

Determinism
-----------
The event queue orders by ``(time, sequence)``; the channel consumes its
generator in send order; agents iterate insertion-ordered dicts.  Same
network + seed + fault spec => the same trajectory, message for message.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.core.context import IterationContext
from repro.core.gradient import GradientConfig, IterationRecord, apply_gamma_at_node
from repro.core.result import RunResultMixin
from repro.core.routing import RoutingState, initial_routing, utilization_profile
from repro.core.solution import Solution, build_solution
from repro.core.transform import ExtendedNetwork
from repro.exceptions import ProtocolError, SimulationError
from repro.obs.instrumentation import NULL_INSTRUMENTATION
from repro.simulation.agent import CommodityPort, NodeAgent, _PHI_POSITIVE_TOL
from repro.simulation.engine import EventEngine
from repro.simulation.messages import (
    ASYNC_STAMP_BYTES,
    ForecastMessage,
    MarginalCostMessage,
    Message,
    RoutingSignalMessage,
    TickMessage,
)
from repro.simulation.metrics import AsyncRunMetrics, ChannelMetrics

__all__ = [
    "FaultSpec",
    "FaultyChannel",
    "AsyncEventEngine",
    "AsyncPort",
    "AsyncNodeAgent",
    "AsyncRunResult",
    "AsyncGradientRun",
    "DEFAULT_STALENESS",
    "DEFAULT_TICK_INTERVAL",
]

# default bound of the freshness rule: a node may run on neighbour values
# up to this many epochs older than its own counter.  2 keeps dependent
# neighbours within 3 epochs of each other while leaving enough slack that
# delay jitter rarely stalls anyone.
DEFAULT_STALENESS = 2

# default local-timer period in simulated ticks; long enough that healthy
# links never trigger a retransmit (base latency is a few ticks), short
# enough that a lost publication is repaired quickly
DEFAULT_TICK_INTERVAL = 8


# ------------------------------------------------------------------ fault layer
@dataclass(frozen=True)
class FaultSpec:
    """Per-link fault parameters (probabilities per message send).

    ``delay_min``/``delay_max`` bound the uniform integer per-hop latency;
    with probability ``spike_prob`` a further ``spike_delay`` ticks are
    added (the "delay spike" of the chaos trace).  ``drop`` loses the
    message entirely; ``duplicate`` delivers a second copy at an
    independently drawn latency.  ``drop`` must stay below 1 so every link
    eventually delivers -- the liveness precondition of the protocol.
    """

    drop: float = 0.0
    duplicate: float = 0.0
    delay_min: int = 1
    delay_max: int = 1
    spike_prob: float = 0.0
    spike_delay: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop < 1.0:
            raise SimulationError(
                f"drop probability must be in [0, 1) for eventual delivery, "
                f"got {self.drop}"
            )
        if not 0.0 <= self.duplicate <= 1.0:
            raise SimulationError(f"duplicate probability invalid: {self.duplicate}")
        if not 1 <= self.delay_min <= self.delay_max:
            raise SimulationError(
                f"need 1 <= delay_min <= delay_max, got "
                f"[{self.delay_min}, {self.delay_max}]"
            )
        if self.spike_delay < 0 or not 0.0 <= self.spike_prob <= 1.0:
            raise SimulationError("invalid delay-spike parameters")


PERFECT_LINK = FaultSpec()


class FaultyChannel:
    """Seeded per-link fault injector: delay, loss, duplication, reordering.

    One :func:`numpy.random.default_rng` generator drives every draw, in
    send order -- the engine's delivery order is itself deterministic, so
    one seed replays one fault trace exactly.  ``links`` overrides the
    default spec for specific ``(sender, target)`` pairs; ``until_tick``
    (optional) turns the channel *perfect* from that simulated tick on,
    which is how the chaos soak builds a fault window followed by
    quiescence.
    """

    def __init__(
        self,
        default: FaultSpec = PERFECT_LINK,
        links: Optional[Mapping[Tuple[int, int], FaultSpec]] = None,
        seed: int = 0,
        until_tick: Optional[int] = None,
    ):
        self.default = default
        self.links = dict(links or {})
        self.seed = seed
        self.until_tick = until_tick
        self.rng = np.random.default_rng(seed)
        self.metrics = ChannelMetrics()

    def spec_for(self, sender: int, target: int) -> FaultSpec:
        return self.links.get((sender, target), self.default)

    def plan(self, sender: int, target: int, now: int) -> List[int]:
        """The delivery delays (ticks) for one message; empty = dropped."""
        spec = self.spec_for(sender, target)
        self.metrics.attempts += 1
        if self.until_tick is not None and now >= self.until_tick:
            spec = PERFECT_LINK
        if spec is PERFECT_LINK:
            self.metrics.delivered += 1
            return [1]
        rng = self.rng
        if spec.drop > 0.0 and rng.random() < spec.drop:
            self.metrics.dropped += 1
            return []
        delays = [self._draw_delay(spec)]
        if spec.duplicate > 0.0 and rng.random() < spec.duplicate:
            self.metrics.duplicated += 1
            delays.append(self._draw_delay(spec))
        self.metrics.delivered += len(delays)
        return delays

    def _draw_delay(self, spec: FaultSpec) -> int:
        delay = int(self.rng.integers(spec.delay_min, spec.delay_max + 1))
        if spec.spike_prob > 0.0 and self.rng.random() < spec.spike_prob:
            delay += spec.spike_delay
            self.metrics.delayed += 1
        elif delay > spec.delay_min:
            self.metrics.delayed += 1
        return delay


class AsyncEventEngine(EventEngine):
    """The deterministic event engine with a fault layer on every send.

    Protocol sends route through the :class:`FaultyChannel` (when one is
    installed): each surviving copy is scheduled at its drawn latency, so
    loss, duplication, and reordering all emerge at the queue level while
    the queue itself stays deterministic.  Local timers bypass the channel
    via :meth:`schedule_local` -- a node's own clock does not traverse the
    network.
    """

    def __init__(
        self,
        channel: Optional[FaultyChannel] = None,
        hop_latency: int = 1,
        on_send: Optional[Callable] = None,
    ):
        super().__init__(hop_latency=hop_latency, on_send=on_send)
        self.channel = channel

    def send(self, target: int, message: Message, delay: Optional[int] = None) -> None:
        if self.channel is None or delay is not None:
            super().send(target, message, delay)
            return
        if target not in self._agents:
            raise SimulationError(f"no agent registered for node {target}")
        self.metrics.on_send(message)
        if self.on_send is not None:
            self.on_send(message)
        for copy_delay in self.channel.plan(message.sender, target, self.now):
            self._deliver_later(target, message, copy_delay)

    def schedule_local(self, node: int, message: Message, delay: int) -> None:
        """Schedule a node-local timer: no channel, no message accounting."""
        if node not in self._agents:
            raise SimulationError(f"no agent registered for node {node}")
        self._deliver_later(node, message, delay)


# ------------------------------------------------------------------ async agent
@dataclass
class AsyncPort(CommodityPort):
    """A commodity port plus the last-known stamped neighbour state."""

    # downstream marginal reports: head -> last value / tag / stamps
    dadr_in: Dict[int, float] = field(default_factory=dict)
    tag_in: Dict[int, bool] = field(default_factory=dict)
    dadr_stamp: Dict[int, int] = field(default_factory=dict)
    dadr_seq: Dict[int, int] = field(default_factory=dict)
    # upstream forecasts: tail -> last gain-scaled inflow / stamps
    inflow_in: Dict[int, float] = field(default_factory=dict)
    inflow_stamp: Dict[int, int] = field(default_factory=dict)
    inflow_seq: Dict[int, int] = field(default_factory=dict)


class AsyncNodeAgent(NodeAgent):
    """A node agent that iterates on message deliveries, not phase barriers."""

    PORT_CLS = AsyncPort

    def __init__(
        self,
        ext: ExtendedNetwork,
        node: int,
        cost_model,
        eta: float,
        traffic_tol: float,
        use_blocking: bool = True,
        staleness: int = DEFAULT_STALENESS,
        tick_interval: int = DEFAULT_TICK_INTERVAL,
    ):
        if staleness < 0:
            raise SimulationError(f"staleness must be >= 0, got {staleness}")
        super().__init__(
            ext, node, cost_model, eta, traffic_tol, use_blocking=use_blocking
        )
        self.staleness = staleness
        self.tick_interval = tick_interval
        self.epoch = 0
        self.target = 0
        self.done = False
        self._seq = 0
        self._last_tick_epoch = -1
        self.retransmits = 0
        self.ticks = 0
        # runner hook, called as on_advance(node, new_epoch) after each
        # local iteration -- how the runner tracks progress in O(1)
        self.on_advance: Optional[Callable[[int, int], None]] = None

    # -- lifecycle -----------------------------------------------------------------
    def start(self, engine: AsyncEventEngine, target_epochs: int) -> None:
        """Bootstrap: publish the epoch-0 view and arm the local timer.

        The epoch-0 values are honest local knowledge: zero marginals and
        tags, traffic equal to the locally offered load (eq. (3) with an
        empty inflow view).  Correct values propagate as neighbours'
        publications arrive -- no global wave is needed to seed the run.
        """
        if target_epochs < 1:
            raise SimulationError("target_epochs must be >= 1")
        self.target = target_epochs
        for port in self.ports.values():
            port.dadr = 0.0
            port.tag = False
            port.traffic = port.max_rate
        self._refresh_usage()
        self._publish(engine)
        if self.tick_interval:
            engine.schedule_local(
                self.node,
                TickMessage(sender=self.node, commodity=-1),
                self.tick_interval,
            )

    # -- freshness / local iteration -------------------------------------------------
    def _ready(self) -> bool:
        """The bounded-staleness predicate over every port's input set."""
        if self.done:
            return False
        horizon = max(0, self.epoch - self.staleness)
        for port in self.ports.values():
            if not port.is_sink:
                dadr_stamp = port.dadr_stamp
                for head in port.out_heads:
                    if dadr_stamp.get(head, -1) < horizon:
                        return False
            inflow_stamp = port.inflow_stamp
            for tail in port.in_tails:
                if inflow_stamp.get(tail, -1) < horizon:
                    return False
        return True

    def stalled_on(self) -> List[str]:
        """Human-readable list of the inputs blocking this agent (diagnosis)."""
        horizon = max(0, self.epoch - self.staleness)
        missing: List[str] = []
        for j, port in self.ports.items():
            if not port.is_sink:
                for head in port.out_heads:
                    if port.dadr_stamp.get(head, -1) < horizon:
                        missing.append(f"dadr[j={j}] from node {head}")
            for tail in port.in_tails:
                if port.inflow_stamp.get(tail, -1) < horizon:
                    missing.append(f"forecast[j={j}] from node {tail}")
        return missing

    def _local_iteration(self) -> None:
        """One barrier-free iteration from the last-known neighbour view.

        Mirrors the synchronous phase order -- marginals (eqs. (9)-(11),
        (15), (18)) from the current ``phi``/traffic, then the ``Gamma``
        update through the shared node-local kernel, then eq. (3) traffic
        and eqs. (4)-(5) usage under the new routing.
        """
        ext = self.ext
        for j, port in self.ports.items():
            if port.is_sink:
                port.dadr = 0.0
                port.tag = False
                continue
            phi_row = self.phi[j]
            dadr = 0.0
            for e, head in zip(port.out_edges, port.out_heads):
                dadf = self._link_cost_derivative(port, e)
                delta = dadf * ext.cost[j, e] + ext.gain[j, e] * port.dadr_in.get(
                    head, 0.0
                )
                port.delta[e] = delta
                dadr += phi_row[e] * delta
            port.dadr = dadr
            port.tag = self._loop_tag(port, dadr)

        for j, port in self.ports.items():
            if port.is_sink or len(port.out_edges) < 2:
                continue
            delta = np.zeros(ext.num_edges, dtype=float)
            for e in port.out_edges:
                delta[e] = port.delta[e]
            blocked = None
            if self.use_blocking:
                blocked = np.zeros(ext.num_edges, dtype=bool)
                phi_row = self.phi[j]
                for e, head in zip(port.out_edges, port.out_heads):
                    if phi_row[e] <= _PHI_POSITIVE_TOL and port.tag_in.get(
                        head, False
                    ):
                        blocked[e] = True
            apply_gamma_at_node(
                self.phi[j],
                port.traffic,
                port.out_edges,
                delta,
                blocked,
                self.eta,
                self.traffic_tol,
            )

        for port in self.ports.values():
            inflow = 0.0
            for tail in port.in_tails:
                inflow += port.inflow_in.get(tail, 0.0)
            port.traffic = port.max_rate + inflow  # eq. (3)
        self._refresh_usage()

    def _loop_tag(self, port: AsyncPort, dadr: float) -> bool:
        """Eq. (18) from the last-known downstream view (see sync agent)."""
        g = self.ext.node_potentials[port.commodity]
        phi_row = self.phi[port.commodity]
        for e, head in zip(port.out_edges, port.out_heads):
            frac = phi_row[e]
            if frac <= _PHI_POSITIVE_TOL:
                continue
            if port.tag_in.get(head, False):
                return True
            if g[self.node] * dadr > g[head] * port.dadr_in.get(head, 0.0):
                continue
            if port.traffic <= 0.0:
                continue
            threshold = (self.eta / port.traffic) * (port.delta[e] - dadr)
            if frac >= threshold:
                return True
        return False

    def _refresh_usage(self) -> None:
        """Eqs. (4)-(5) over every port (async: no phase-completion gate)."""
        usage = 0.0
        for j, port in self.ports.items():
            if port.is_sink:
                continue
            phi_row = self.phi[j]
            for e in port.out_edges:
                usage += port.traffic * phi_row[e] * float(self.ext.cost[j, e])
        self.usage = usage

    # -- publication -----------------------------------------------------------------
    def _publish(
        self,
        engine: AsyncEventEngine,
        retransmit: bool = False,
        only_to: Optional[int] = None,
    ) -> None:
        """Send this node's current stamped view to its neighbours.

        ``only_to`` restricts the publication to one neighbour (the reply
        path of the retransmit protocol); otherwise every in-tail gets the
        marginal report and every out-head a forecast per allowed edge --
        inactive edges included, so a receiver's last-known inflow decays
        when an edge deactivates.
        """
        node = self.node
        for j, port in self.ports.items():
            phi_row = self.phi[j]
            for tail in port.in_tails:
                if only_to is not None and tail != only_to:
                    continue
                self._seq += 1
                engine.send(
                    tail,
                    MarginalCostMessage(
                        sender=node,
                        commodity=j,
                        seq=self._seq,
                        epoch=self.epoch,
                        retransmit=retransmit,
                        value=port.dadr,
                        tagged=port.tag,
                    ),
                )
            if port.is_sink:
                continue
            for e, head in zip(port.out_edges, port.out_heads):
                if only_to is not None and head != only_to:
                    continue
                self._seq += 1
                engine.send(
                    head,
                    ForecastMessage(
                        sender=node,
                        commodity=j,
                        seq=self._seq,
                        epoch=self.epoch,
                        retransmit=retransmit,
                        flow=port.traffic * phi_row[e] * float(self.ext.gain[j, e]),
                    ),
                )

    # -- message handling ------------------------------------------------------------
    def on_message(self, message: Message, engine: EventEngine) -> None:  # type: ignore[override]
        if isinstance(message, TickMessage):
            self._on_tick(engine)
            return
        port = self.ports.get(message.commodity)
        if port is None:
            raise ProtocolError(
                f"node {self.node} got a message for commodity "
                f"{message.commodity} it does not carry"
            )
        assert isinstance(port, AsyncPort)
        sender = message.sender
        if isinstance(message, MarginalCostMessage):
            if sender not in port.out_heads:
                raise ProtocolError(
                    f"marginal cost from non-neighbour {sender} at node {self.node}"
                )
            # last-writer-wins on the sender's sequence number: duplicates
            # and reordered stragglers fall through here
            if message.seq > port.dadr_seq.get(sender, -1):
                port.dadr_seq[sender] = message.seq
                port.dadr_in[sender] = message.value
                port.tag_in[sender] = message.tagged
                port.dadr_stamp[sender] = message.epoch
        elif isinstance(message, ForecastMessage):
            if sender not in port.in_tails:
                raise ProtocolError(
                    f"forecast from non-upstream {sender} at node {self.node}"
                )
            if message.seq > port.inflow_seq.get(sender, -1):
                port.inflow_seq[sender] = message.seq
                port.inflow_in[sender] = message.flow
                port.inflow_stamp[sender] = message.epoch
        elif isinstance(message, RoutingSignalMessage):
            # the async protocol folds the active bit into zero-flow
            # forecasts; a stray signal is validated but carries no news
            if sender not in port.in_tails:
                raise ProtocolError(
                    f"routing signal from non-upstream {sender} at node {self.node}"
                )
        else:
            raise ProtocolError(f"unknown message type {type(message).__name__}")
        if message.retransmit:
            # answer a stall-triggered resend with our own current state on
            # the reverse link, so a node whose publication was lost can
            # refresh the stalled neighbour (and vice versa)
            self._publish(engine, only_to=sender)  # type: ignore[arg-type]
        self._advance(engine)  # type: ignore[arg-type]

    def _on_tick(self, engine: AsyncEventEngine) -> None:
        if self.done:
            return
        self.ticks += 1
        if self.epoch == self._last_tick_epoch:
            # no progress since the previous tick: assume a publication (ours
            # or a neighbour's) was lost and re-send our stamped state
            self.retransmits += 1
            self._publish(engine, retransmit=True)
        self._last_tick_epoch = self.epoch
        if self.tick_interval:
            engine.schedule_local(
                self.node,
                TickMessage(sender=self.node, commodity=-1),
                self.tick_interval,
            )

    def _advance(self, engine: AsyncEventEngine) -> None:
        while self._ready():
            self._local_iteration()
            self.epoch += 1
            if self.epoch >= self.target:
                self.done = True
            self._publish(engine)
            if self.on_advance is not None:
                self.on_advance(self.node, self.epoch)


# ------------------------------------------------------------------ run driver
@dataclass
class AsyncRunResult(RunResultMixin):
    """Outcome of a barrier-free run: solution, trajectory, async metrics.

    Implements the :class:`~repro.core.result.RunResult` protocol with the
    same record type as the synchronous engines, so every consumer
    (analysis, CLI ``--json``, the oracle) reads it unchanged; ``metrics``
    adds what only an asynchronous execution can measure -- epoch skew,
    retransmissions, and the fault counters of the channel.
    """

    solution: Solution
    iterations: int
    history: List[IterationRecord]
    metrics: AsyncRunMetrics = field(default_factory=AsyncRunMetrics)


class AsyncGradientRun:
    """Run the gradient protocol with no global barrier anywhere.

    The constructor mirrors :class:`~repro.simulation.runner.DistributedGradientRun`
    (same config object, same backend-for-snapshots contract) plus the
    async knobs: ``staleness`` (the freshness bound), ``faults`` (a
    :class:`FaultSpec` or ``None`` for a perfect network), ``seed`` (the
    channel's fault trace), and ``tick_interval`` (the local retransmit
    timer; ``0`` disables recovery -- only sensible on a lossless
    channel).
    """

    def __init__(
        self,
        ext: ExtendedNetwork,
        config: Optional[GradientConfig] = None,
        staleness: int = DEFAULT_STALENESS,
        faults: Optional[FaultSpec] = None,
        links: Optional[Mapping[Tuple[int, int], FaultSpec]] = None,
        seed: int = 0,
        fault_until_tick: Optional[int] = None,
        tick_interval: int = DEFAULT_TICK_INTERVAL,
        instrumentation=None,
        backend=None,
    ):
        self.ext = ext
        self.config = config or GradientConfig()
        self.staleness = staleness
        self.inst = (
            instrumentation if instrumentation is not None else NULL_INSTRUMENTATION
        )
        if backend is None:
            from repro.parallel.backend import SerialBackend

            backend = SerialBackend()
        self.backend = backend
        backend.bind(self.ext, self.config)

        channel: Optional[FaultyChannel] = None
        if faults is not None or links:
            channel = FaultyChannel(
                default=faults if faults is not None else PERFECT_LINK,
                links=links,
                seed=seed,
                until_tick=fault_until_tick,
            )
        self.engine = AsyncEventEngine(channel=channel)
        self.agents: List[AsyncNodeAgent] = []
        for node in range(ext.num_nodes):
            agent = AsyncNodeAgent(
                ext,
                node,
                cost_model=self.config.cost_model,
                eta=self.config.eta,
                traffic_tol=self.config.traffic_tol,
                use_blocking=self.config.use_blocking,
                staleness=staleness,
                tick_interval=tick_interval,
            )
            self.engine.register(node, agent)
            self.agents.append(agent)

        # O(1) progress tracking: epoch histogram + min/max pointers
        self._epochs = np.zeros(ext.num_nodes, dtype=np.int64)
        self._at_min = ext.num_nodes
        self._min_epoch = 0
        self._max_epoch = 0
        self.max_skew = 0
        for agent in self.agents:
            agent.on_advance = self._on_advance

    # -- progress accounting ---------------------------------------------------------
    def _on_advance(self, node: int, epoch: int) -> None:
        self._epochs[node] = epoch
        if epoch > self._max_epoch:
            self._max_epoch = epoch
        if epoch - 1 == self._min_epoch:
            self._at_min -= 1
            if self._at_min == 0:
                self._min_epoch = int(self._epochs.min())
                self._at_min = int((self._epochs == self._min_epoch).sum())
        skew = self._max_epoch - self._min_epoch
        if skew > self.max_skew:
            self.max_skew = skew
        if self.inst.enabled:
            self.inst.event(
                "async.advance", node=node, epoch=epoch, tick=self.engine.now
            )

    @property
    def min_epoch(self) -> int:
        return self._min_epoch

    # -- state import/export ----------------------------------------------------------
    def load_routing(self, routing: RoutingState) -> None:
        for agent in self.agents:
            agent.load_routing(routing.phi)

    def export_routing(self) -> RoutingState:
        phi = np.zeros((self.ext.num_commodities, self.ext.num_edges), dtype=float)
        for agent in self.agents:
            agent.export_routing(phi)
        return RoutingState(phi)

    # -- full run ----------------------------------------------------------------------
    def run(
        self,
        epochs: int,
        routing: Optional[RoutingState] = None,
        record_every: int = 1,
        validate=False,
    ) -> AsyncRunResult:
        """Drive every agent to ``epochs`` local iterations, barrier-free.

        The trajectory is sampled whenever the *slowest* agent crosses a
        multiple of ``record_every``: the engine pauses (the simulation
        pauses -- the protocol has no barrier), the mixed-epoch routing
        state is snapshotted and evaluated, and delivery resumes.  The
        final record always exists and describes the state after every
        agent reached its target and the queue drained.
        """
        if epochs < 1:
            raise SimulationError("epochs must be >= 1")
        if routing is None:
            routing = initial_routing(self.ext)
        self.load_routing(routing)

        inst = self.inst
        engine = self.engine
        with inst.phase("async.bootstrap"):
            for agent in self.agents:
                agent.start(engine, epochs)

        history: List[IterationRecord] = []
        context: Optional[IterationContext] = None
        checkpoints = [
            m for m in range(record_every, epochs, record_every)
        ] + [epochs]
        rounds = 0
        for checkpoint in checkpoints:
            with inst.phase("async.segment", checkpoint=checkpoint):
                rounds += engine.run_until(
                    lambda: self._min_epoch >= checkpoint
                )
            if self._min_epoch < checkpoint:
                self._raise_deadlock(checkpoint)
            snapshot = self.export_routing()
            context = self.backend.build_context(
                snapshot, instrumentation=inst, with_derivatives=False
            )
            record = self._record(checkpoint, context)
            history.append(record)
            if inst.enabled:
                inst.iteration(
                    checkpoint,
                    cost=record.cost,
                    utility=record.utility,
                    max_utilization=record.max_utilization,
                )

        # drain stragglers (duplicates, late retransmit replies) so the
        # queue is empty and the trace is complete; done agents only ever
        # answer retransmits, so this terminates
        rounds += engine.run_until_idle()

        assert context is not None
        solution = build_solution(
            self.ext,
            context.routing,
            self.config.cost_model,
            method="gradient-async",
            iterations=epochs,
            traffic=context.traffic,
        )
        metrics = self._collect_metrics(epochs, rounds)
        if inst.enabled:
            inst.gauge("final_utility", solution.utility)
            inst.gauge("async.max_skew", float(metrics.max_skew))
            inst.gauge(
                "async.messages_per_node_epoch", metrics.messages_per_node_epoch
            )
            inst.count("async.retransmits", metrics.retransmits)
            inst.count("async.ticks", metrics.ticks)
            ch = metrics.channel
            inst.count("async.channel.dropped", ch.dropped)
            inst.count("async.channel.duplicated", ch.duplicated)
            inst.count("async.channel.delayed", ch.delayed)
        result = AsyncRunResult(
            solution=solution,
            iterations=epochs,
            history=history,
            metrics=metrics,
        )
        if validate:
            from repro.validate import attach_validation

            attach_validation(result, self.ext, mode=validate, instrumentation=inst)
        return result

    def _collect_metrics(self, epochs: int, rounds: int) -> AsyncRunMetrics:
        engine = self.engine
        channel = engine.channel.metrics if engine.channel else ChannelMetrics()
        messages = engine.metrics.messages_total
        metrics = AsyncRunMetrics(
            epochs=epochs,
            messages=messages,
            bytes=engine.metrics.bytes_total + messages * ASYNC_STAMP_BYTES,
            rounds=rounds,
            max_skew=self.max_skew,
            retransmits=sum(agent.retransmits for agent in self.agents),
            ticks=sum(agent.ticks for agent in self.agents),
            channel=channel,
        )
        if self.agents and epochs:
            metrics.messages_per_node_epoch = messages / (
                len(self.agents) * epochs
            )
        return metrics

    def _raise_deadlock(self, checkpoint: int) -> None:
        stuck = [
            agent
            for agent in self.agents
            if agent.epoch < checkpoint and not agent.done
        ]
        detail = "; ".join(
            f"node {agent.node}@epoch {agent.epoch} waiting on "
            f"[{', '.join(agent.stalled_on()) or 'nothing (timer disabled?)'}]"
            for agent in stuck[:5]
        )
        raise SimulationError(
            f"async deadlock: queue drained with {len(stuck)} agent(s) below "
            f"epoch {checkpoint} -- {detail}"
        )

    def _record(self, iteration: int, context: IterationContext) -> IterationRecord:
        breakdown = context.breakdown
        util = utilization_profile(context.node_usage, self.ext.capacity)
        return IterationRecord(
            iteration=iteration,
            cost=breakdown.total,
            utility=breakdown.utility,
            max_utilization=float(util.max()) if util.size else 0.0,
            admitted=breakdown.admitted.copy(),
        )
