"""Typed protocol messages exchanged by node agents.

Section 5 of the paper describes three per-iteration protocol components;
each maps to a message type here:

* the **marginal-cost protocol**: every node broadcasts
  ``dA/dr_i(j)`` upstream once it has heard from all of its downstream
  neighbours -- :class:`MarginalCostMessage`, which also carries the one-bit
  loop-freedom *tag* of eq. (18);
* the **routing-update signalling**: after updating ``phi``, each node tells
  its downstream neighbours whether the edge is active under the new routing
  -- :class:`RoutingSignalMessage` ("each node i signals the downstream
  nodes under phi1 so that each node k gets a list of upstream nodes");
* the **forecast protocol**: each node forwards the commodity flow it will
  emit on each out-edge next iteration -- :class:`ForecastMessage`.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Message",
    "MarginalCostMessage",
    "RoutingSignalMessage",
    "ForecastMessage",
]


@dataclass(frozen=True)
class Message:
    """Base class: every message names its sender node and commodity."""

    sender: int
    commodity: int

    @property
    def size_bytes(self) -> int:
        """Nominal wire size used by the accounting (8 bytes per float/int)."""
        return 24


@dataclass(frozen=True)
class MarginalCostMessage(Message):
    """Upstream broadcast of ``dA/dr_sender(j)`` plus the blocking tag."""

    value: float
    tagged: bool

    @property
    def size_bytes(self) -> int:
        return 33  # sender + commodity + float + tag bit


@dataclass(frozen=True)
class RoutingSignalMessage(Message):
    """Downstream notice: is edge (sender -> receiver) active under phi1?"""

    active: bool

    @property
    def size_bytes(self) -> int:
        return 25


@dataclass(frozen=True)
class ForecastMessage(Message):
    """Downstream forecast: commodity flow arriving over one edge.

    ``flow`` is already gain-scaled, i.e. measured in *receiver* units
    (``t_tail * phi * beta``), matching eq. (3)'s incoming term.
    """

    flow: float

    @property
    def size_bytes(self) -> int:
        return 32
