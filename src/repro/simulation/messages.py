"""Typed protocol messages exchanged by node agents.

Section 5 of the paper describes three per-iteration protocol components;
each maps to a message type here:

* the **marginal-cost protocol**: every node broadcasts
  ``dA/dr_i(j)`` upstream once it has heard from all of its downstream
  neighbours -- :class:`MarginalCostMessage`, which also carries the one-bit
  loop-freedom *tag* of eq. (18);
* the **routing-update signalling**: after updating ``phi``, each node tells
  its downstream neighbours whether the edge is active under the new routing
  -- :class:`RoutingSignalMessage` ("each node i signals the downstream
  nodes under phi1 so that each node k gets a list of upstream nodes");
* the **forecast protocol**: each node forwards the commodity flow it will
  emit on each out-edge next iteration -- :class:`ForecastMessage`.

Asynchronous stamps
-------------------
Every message additionally carries two stamps the barrier-free engine
(:mod:`repro.simulation.async_engine`) keys on:

``seq``
    A per-sender monotone sequence number.  Receivers keep the highest
    sequence seen per ``(sender, commodity, type)`` and discard anything
    older, which makes duplicated and reordered deliveries harmless
    (last-writer-wins on the freshest value).
``epoch``
    The sender's *local* iteration count when the carried value was
    computed.  The bounded-staleness rule compares these stamps against a
    node's own epoch to decide whether its neighbourhood view is fresh
    enough to advance ``phi``.

``retransmit`` marks a stall-triggered resend (the async recovery path);
a receiver answers one by re-publishing its own current state on the
reverse link, which is what restores progress after message loss.

The synchronous engine ignores all three fields (they default to zero /
``False``), so its wire accounting is unchanged; the async engine adds
:data:`ASYNC_STAMP_BYTES` per message on top of ``size_bytes``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "ASYNC_STAMP_BYTES",
    "Message",
    "MarginalCostMessage",
    "RoutingSignalMessage",
    "ForecastMessage",
    "TickMessage",
]

# wire overhead of the async stamps: seq (8) + epoch (8) + retransmit bit (1)
ASYNC_STAMP_BYTES = 17


@dataclass(frozen=True)
class Message:
    """Base class: every message names its sender node and commodity."""

    sender: int
    commodity: int
    seq: int = 0  # per-sender monotone sequence number (async engine)
    epoch: int = 0  # sender's local epoch when the value was computed
    retransmit: bool = False  # stall-triggered resend (async recovery)

    @property
    def size_bytes(self) -> int:
        """Nominal wire size used by the accounting (8 bytes per float/int)."""
        return 24


@dataclass(frozen=True)
class MarginalCostMessage(Message):
    """Upstream broadcast of ``dA/dr_sender(j)`` plus the blocking tag."""

    value: float = 0.0
    tagged: bool = False

    @property
    def size_bytes(self) -> int:
        return 33  # sender + commodity + float + tag bit


@dataclass(frozen=True)
class RoutingSignalMessage(Message):
    """Downstream notice: is edge (sender -> receiver) active under phi1?"""

    active: bool = False

    @property
    def size_bytes(self) -> int:
        return 25


@dataclass(frozen=True)
class ForecastMessage(Message):
    """Downstream forecast: commodity flow arriving over one edge.

    ``flow`` is already gain-scaled, i.e. measured in *receiver* units
    (``t_tail * phi * beta``), matching eq. (3)'s incoming term.  The
    async engine sends one per allowed out-edge *including* inactive
    edges (``flow == 0``), folding the routing signal's active bit into
    the forecast itself -- a receiver's last-known inflow then decays
    correctly when an upstream deactivates an edge.
    """

    flow: float = 0.0

    @property
    def size_bytes(self) -> int:
        return 32


@dataclass(frozen=True)
class TickMessage(Message):
    """A node's local timer (async engine only; never crosses the wire).

    Ticks are self-addressed, scheduled directly on the event queue --
    they bypass the faulty channel and the message accounting, modelling
    a local clock rather than network traffic.
    """

    @property
    def size_bytes(self) -> int:
        return 0
