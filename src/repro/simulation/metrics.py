"""Message and round accounting for the distributed protocols.

Backs the paper's Section-6 complexity comparison: a gradient iteration
needs O(L) sequential message rounds (L = longest routing path) while a
back-pressure iteration needs O(1).  The engine feeds per-message callbacks;
the runner snapshots per-phase counters into :class:`IterationMetrics`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["MessageMetrics", "PhaseMetrics", "IterationMetrics"]


class MessageMetrics:
    """Running totals of messages and bytes by message type."""

    def __init__(self) -> None:
        self.messages_total = 0
        self.bytes_total = 0
        self.by_type: Dict[str, int] = {}

    def on_send(self, message: object) -> None:
        self.messages_total += 1
        self.bytes_total += getattr(message, "size_bytes", 0)
        name = type(message).__name__
        self.by_type[name] = self.by_type.get(name, 0) + 1

    def snapshot(self) -> Dict[str, int]:
        return {
            "messages_total": self.messages_total,
            "bytes_total": self.bytes_total,
            **self.by_type,
        }


@dataclass
class PhaseMetrics:
    """One protocol phase of one iteration."""

    name: str
    messages: int
    bytes: int
    rounds: int  # sequential depth (engine ticks with unit hop latency)

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "messages": self.messages,
            "bytes": self.bytes,
            "rounds": self.rounds,
        }


@dataclass
class IterationMetrics:
    """All phases of one distributed iteration."""

    iteration: int
    phases: List[PhaseMetrics] = field(default_factory=list)

    @property
    def messages(self) -> int:
        return sum(p.messages for p in self.phases)

    @property
    def rounds(self) -> int:
        return sum(p.rounds for p in self.phases)

    @property
    def bytes(self) -> int:
        return sum(p.bytes for p in self.phases)

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe form used by the metrics exporters and ``--json``."""
        return {
            "iteration": self.iteration,
            "messages": self.messages,
            "bytes": self.bytes,
            "rounds": self.rounds,
            "phases": [p.as_dict() for p in self.phases],
        }
