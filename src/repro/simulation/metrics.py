"""Message and round accounting for the distributed protocols.

Backs the paper's Section-6 complexity comparison: a gradient iteration
needs O(L) sequential message rounds (L = longest routing path) while a
back-pressure iteration needs O(1).  The engine feeds per-message callbacks;
the runner snapshots per-phase counters into :class:`IterationMetrics`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

__all__ = [
    "MessageMetrics",
    "PhaseMetrics",
    "IterationMetrics",
    "ChannelMetrics",
    "AsyncRunMetrics",
]


class MessageMetrics:
    """Running totals of messages and bytes by message type."""

    def __init__(self) -> None:
        self.messages_total = 0
        self.bytes_total = 0
        self.by_type: Dict[str, int] = {}

    def on_send(self, message: object) -> None:
        self.messages_total += 1
        self.bytes_total += getattr(message, "size_bytes", 0)
        name = type(message).__name__
        self.by_type[name] = self.by_type.get(name, 0) + 1

    def snapshot(self) -> Dict[str, int]:
        return {
            "messages_total": self.messages_total,
            "bytes_total": self.bytes_total,
            **self.by_type,
        }


@dataclass
class PhaseMetrics:
    """One protocol phase of one iteration."""

    name: str
    messages: int
    bytes: int
    rounds: int  # sequential depth (engine ticks with unit hop latency)

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "messages": self.messages,
            "bytes": self.bytes,
            "rounds": self.rounds,
        }


@dataclass
class ChannelMetrics:
    """Fault accounting of one :class:`~repro.simulation.async_engine.FaultyChannel`.

    ``attempts`` counts protocol sends offered to the channel; a dropped
    message was never delivered, a duplicated one was delivered twice, and
    ``delayed`` counts deliveries whose latency exceeded the base hop
    (reordering is a *consequence* of unequal delays, so it has no counter
    of its own).  ``faults`` is the total number of injected fault events
    (drops + duplications + delay spikes) -- what the chaos soak sizes its
    "200-event fault trace" by.
    """

    attempts: int = 0
    delivered: int = 0
    dropped: int = 0
    duplicated: int = 0
    delayed: int = 0

    @property
    def faults(self) -> int:
        return self.dropped + self.duplicated + self.delayed

    def as_dict(self) -> Dict[str, int]:
        return {
            "attempts": self.attempts,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "duplicated": self.duplicated,
            "delayed": self.delayed,
            "faults": self.faults,
        }


@dataclass
class AsyncRunMetrics:
    """Whole-run accounting of one barrier-free asynchronous execution.

    ``messages``/``bytes`` count protocol traffic (stamps included, ticks
    excluded); ``rounds`` is the total elapsed simulated ticks.  ``epochs``
    is the per-node local-iteration target every agent reached;
    ``max_skew`` is the largest observed gap between the fastest and
    slowest node's local epoch -- a synchronous barrier would pin it to
    at most 1, so ``max_skew > 1`` is positive evidence the run was
    barrier-free.  ``retransmits`` counts stall-triggered resends (the
    loss-recovery path) and ``ticks`` local timer firings.
    """

    epochs: int = 0
    messages: int = 0
    bytes: int = 0
    rounds: int = 0
    max_skew: int = 0
    retransmits: int = 0
    ticks: int = 0
    messages_per_node_epoch: float = 0.0
    channel: ChannelMetrics = field(default_factory=ChannelMetrics)

    def as_dict(self) -> Dict[str, object]:
        return {
            "epochs": self.epochs,
            "messages": self.messages,
            "bytes": self.bytes,
            "rounds": self.rounds,
            "max_skew": self.max_skew,
            "retransmits": self.retransmits,
            "ticks": self.ticks,
            "messages_per_node_epoch": self.messages_per_node_epoch,
            "channel": self.channel.as_dict(),
        }


@dataclass
class IterationMetrics:
    """All phases of one distributed iteration."""

    iteration: int
    phases: List[PhaseMetrics] = field(default_factory=list)

    @property
    def messages(self) -> int:
        return sum(p.messages for p in self.phases)

    @property
    def rounds(self) -> int:
        return sum(p.rounds for p in self.phases)

    @property
    def bytes(self) -> int:
        return sum(p.bytes for p in self.phases)

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe form used by the metrics exporters and ``--json``."""
        return {
            "iteration": self.iteration,
            "messages": self.messages,
            "bytes": self.bytes,
            "rounds": self.rounds,
            "phases": [p.as_dict() for p in self.phases],
        }
