"""Message-passing distributed-simulation substrate.

Runs the paper's algorithm as an actual protocol between per-node agents
over a deterministic event engine, with message/round accounting.
"""

from repro.simulation.agent import CommodityPort, NodeAgent
from repro.simulation.engine import EventEngine
from repro.simulation.messages import (
    ForecastMessage,
    MarginalCostMessage,
    Message,
    RoutingSignalMessage,
)
from repro.simulation.metrics import IterationMetrics, MessageMetrics, PhaseMetrics
from repro.simulation.runner import DistributedGradientRun, DistributedRunResult

__all__ = [
    "CommodityPort",
    "NodeAgent",
    "EventEngine",
    "ForecastMessage",
    "MarginalCostMessage",
    "Message",
    "RoutingSignalMessage",
    "IterationMetrics",
    "MessageMetrics",
    "PhaseMetrics",
    "DistributedGradientRun",
    "DistributedRunResult",
]
