"""Message-passing distributed-simulation substrate.

Runs the paper's algorithm as an actual protocol between per-node agents
over a deterministic event engine, with message/round accounting.  Two
execution models share the agent wiring: the synchronous phase-barrier
runner (:class:`DistributedGradientRun`) and the barrier-free asynchronous
engine (:class:`AsyncGradientRun`) that tolerates message delay, loss,
duplication, and reordering via a seeded :class:`FaultyChannel`.
"""

from repro.simulation.agent import CommodityPort, NodeAgent
from repro.simulation.async_engine import (
    AsyncEventEngine,
    AsyncGradientRun,
    AsyncNodeAgent,
    AsyncPort,
    AsyncRunResult,
    FaultSpec,
    FaultyChannel,
)
from repro.simulation.engine import EventEngine
from repro.simulation.messages import (
    ASYNC_STAMP_BYTES,
    ForecastMessage,
    MarginalCostMessage,
    Message,
    RoutingSignalMessage,
    TickMessage,
)
from repro.simulation.metrics import (
    AsyncRunMetrics,
    ChannelMetrics,
    IterationMetrics,
    MessageMetrics,
    PhaseMetrics,
)
from repro.simulation.runner import DistributedGradientRun, DistributedRunResult

__all__ = [
    "CommodityPort",
    "NodeAgent",
    "EventEngine",
    "ASYNC_STAMP_BYTES",
    "ForecastMessage",
    "MarginalCostMessage",
    "Message",
    "RoutingSignalMessage",
    "TickMessage",
    "IterationMetrics",
    "MessageMetrics",
    "PhaseMetrics",
    "AsyncRunMetrics",
    "ChannelMetrics",
    "DistributedGradientRun",
    "DistributedRunResult",
    "AsyncEventEngine",
    "AsyncGradientRun",
    "AsyncNodeAgent",
    "AsyncPort",
    "AsyncRunResult",
    "FaultSpec",
    "FaultyChannel",
]
