"""Per-node agents executing the paper's distributed protocols.

Each :class:`NodeAgent` owns exactly the state a real server would: its own
routing fractions, its last forecast traffic ``t_i(j)``, its own resource
usage ``f_i``, and whatever its neighbours told it this iteration.  One
iteration of the algorithm is three phases (paper, Section 5):

1. **Marginal-cost wave** (upstream): per commodity, the sink broadcasts
   ``dA/dr = 0``; every node waits until it has heard from *all* of its
   out-neighbours, computes its per-edge marginals ``delta_e`` (eq. (15)'s
   bracket, using only local ``f`` and the received values), derives its own
   ``dA/dr_i(j)`` (eq. (9)) and loop-freedom tag (eq. (18)), and broadcasts
   them to its in-neighbours.  Deadlock-free because commodity subgraphs are
   DAGs (and, in general, whenever the routing set is loop free).
2. **Routing update** (local): every node applies the update map ``Gamma``
   via the *shared* node-local kernel
   :func:`repro.core.gradient.apply_gamma_at_node` -- the same function the
   synchronous engine calls, which is what makes the two implementations
   bit-identical.
3. **Forecast wave** (downstream): every node signals each out-neighbour
   whether the edge is active under the new routing; once a node has all
   signals and the forecast flow from every active upstream, it computes its
   next-iteration traffic (eq. (3)) and forwards gain-scaled forecasts.  The
   node's resource usage ``f_i`` -- its local "resource allocation" for the
   forecast flows -- follows from eqs. (4)-(5).

The agent raises :class:`ProtocolError` on any out-of-contract message, so
protocol bugs fail loudly instead of silently corrupting the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.gradient import apply_gamma_at_node
from repro.core.marginals import CostModel
from repro.core.transform import ExtendedNetwork
from repro.exceptions import ProtocolError
from repro.simulation.engine import EventEngine
from repro.simulation.messages import (
    ForecastMessage,
    MarginalCostMessage,
    Message,
    RoutingSignalMessage,
)

__all__ = ["CommodityPort", "NodeAgent"]

_PHI_POSITIVE_TOL = 1e-12


@dataclass
class CommodityPort:
    """A node's static wiring and per-iteration scratch for one commodity."""

    commodity: int
    is_sink: bool
    is_dummy: bool
    max_rate: float  # lambda_j at the dummy source, else 0
    out_edges: List[int] = field(default_factory=list)  # global edge ids
    out_heads: List[int] = field(default_factory=list)
    in_tails: List[int] = field(default_factory=list)
    difference_edge: Optional[int] = None

    # phase A state
    received_dadr: Dict[int, float] = field(default_factory=dict)
    received_tag: Dict[int, bool] = field(default_factory=dict)
    dadr: float = 0.0
    tag: bool = False
    delta: Dict[int, float] = field(default_factory=dict)  # per out-edge

    # phase C state
    signals_received: int = 0
    active_upstreams: int = 0
    forecasts_received: int = 0
    inflow: float = 0.0
    traffic: float = 0.0
    forecast_done: bool = False

    def reset_marginal_phase(self) -> None:
        self.received_dadr.clear()
        self.received_tag.clear()
        self.delta.clear()
        self.dadr = 0.0
        self.tag = False

    def reset_forecast_phase(self) -> None:
        self.signals_received = 0
        self.active_upstreams = 0
        self.forecasts_received = 0
        self.inflow = 0.0
        self.forecast_done = False


class NodeAgent:
    """One extended-graph node participating in the distributed algorithm."""

    # the port record this agent wires per commodity; the async agent swaps
    # in a stamp-carrying subclass without repeating the wiring below
    PORT_CLS = CommodityPort

    def __init__(
        self,
        ext: ExtendedNetwork,
        node: int,
        cost_model: CostModel,
        eta: float,
        traffic_tol: float,
        use_blocking: bool = True,
    ):
        self.ext = ext
        self.node = node
        self.cost_model = cost_model
        self.eta = eta
        self.traffic_tol = traffic_tol
        self.use_blocking = use_blocking
        self.capacity = float(ext.capacity[node])
        self.usage = 0.0  # f_i: local resource usage under the current forecast

        # phi rows are full-length arrays indexed by global edge id; the agent
        # only ever touches its own out-edges.
        self.phi: Dict[int, np.ndarray] = {}
        self.ports: Dict[int, CommodityPort] = {}
        for view in ext.commodities:
            j = view.index
            if node not in view.node_indices:
                continue
            port = self.PORT_CLS(
                commodity=j,
                is_sink=(node == view.sink),
                is_dummy=(node == view.dummy),
                max_rate=view.max_rate if node == view.dummy else 0.0,
            )
            for e in ext.commodity_out_edges[j][node]:
                port.out_edges.append(e)
                port.out_heads.append(int(ext.edge_head[e]))
            for e in ext.in_edges[node]:
                if ext.allowed[j, e]:
                    port.in_tails.append(int(ext.edge_tail[e]))
            if node == view.dummy:
                port.difference_edge = view.difference_edge
            self.ports[j] = port
            self.phi[j] = np.zeros(ext.num_edges, dtype=float)

    # -- initialisation ------------------------------------------------------------
    def load_routing(self, phi: np.ndarray) -> None:
        """Install this node's rows of a global ``phi`` (e.g. the shed-all start)."""
        for j, row in self.phi.items():
            row[:] = 0.0
            for e in self.ports[j].out_edges:
                row[e] = phi[j, e]

    def export_routing(self, phi: np.ndarray) -> None:
        """Write this node's out-edge fractions into a global ``phi`` array."""
        for j, row in self.phi.items():
            for e in self.ports[j].out_edges:
                phi[j, e] = row[e]

    # -- phase A: marginal-cost wave -------------------------------------------------
    def begin_marginal_phase(self, engine: EventEngine) -> None:
        for port in self.ports.values():
            port.reset_marginal_phase()
        for port in self.ports.values():
            if port.is_sink:
                self._broadcast_marginal(port, engine)
            elif not port.out_edges:
                raise ProtocolError(
                    f"non-sink node {self.node} has no out-edges for "
                    f"commodity {port.commodity}"
                )
            else:
                self._maybe_finish_marginal(port, engine)

    def _maybe_finish_marginal(self, port: CommodityPort, engine: EventEngine) -> None:
        if port.is_sink or len(port.received_dadr) < len(port.out_heads):
            return
        ext = self.ext
        j = port.commodity
        phi_row = self.phi[j]
        dadr = 0.0
        for e, head in zip(port.out_edges, port.out_heads):
            dadf = self._link_cost_derivative(port, e)
            delta = dadf * ext.cost[j, e] + ext.gain[j, e] * port.received_dadr[head]
            port.delta[e] = delta
            dadr += phi_row[e] * delta
        port.dadr = dadr

        # loop-freedom tag (eq. (18), in source-equivalent units -- see
        # repro.core.blocking): own improper out-link, or a tagged
        # positive-phi downstream neighbour.
        g = ext.node_potentials[j]
        tag = False
        for e, head in zip(port.out_edges, port.out_heads):
            frac = phi_row[e]
            if frac <= _PHI_POSITIVE_TOL:
                continue
            if port.received_tag[head]:
                tag = True
                break
            if g[self.node] * dadr > g[head] * port.received_dadr[head]:
                continue
            if port.traffic <= 0.0:
                continue
            threshold = (self.eta / port.traffic) * (port.delta[e] - dadr)
            if frac >= threshold:
                tag = True
                break
        port.tag = tag
        self._broadcast_marginal(port, engine)

    def _broadcast_marginal(self, port: CommodityPort, engine: EventEngine) -> None:
        message = MarginalCostMessage(
            sender=self.node,
            commodity=port.commodity,
            value=port.dadr,
            tagged=port.tag,
        )
        for tail in port.in_tails:
            engine.send(tail, message)

    def _link_cost_derivative(self, port: CommodityPort, edge: int) -> float:
        """Eq. (11) from purely local state."""
        if port.difference_edge is not None and edge == port.difference_edge:
            shed = self.phi[port.commodity][edge] * port.traffic
            remaining = max(port.max_rate - shed, 0.0)
            view = self.ext.commodities[port.commodity]
            return float(view.utility.derivative(remaining))
        if not np.isfinite(self.capacity):
            return 0.0
        return self.cost_model.eps * float(
            self.cost_model.penalty.derivative(self.usage, self.capacity)
        )

    # -- phase B: local routing update -----------------------------------------------
    def apply_routing_update(self, instrumentation=None) -> None:
        """Apply ``Gamma`` locally; ``instrumentation`` counts kernel calls
        (``gamma_applies``) so protocol cost per iteration is observable."""
        for j, port in self.ports.items():
            if port.is_sink or len(port.out_edges) < 2:
                continue
            if len(port.received_dadr) < len(port.out_heads):
                raise ProtocolError(
                    f"node {self.node} updating commodity {j} before the "
                    f"marginal-cost wave completed"
                )
            delta = np.zeros(self.ext.num_edges, dtype=float)
            for e in port.out_edges:
                delta[e] = port.delta[e]
            blocked = None
            if self.use_blocking:
                blocked = np.zeros(self.ext.num_edges, dtype=bool)
                phi_row = self.phi[j]
                for e, head in zip(port.out_edges, port.out_heads):
                    if phi_row[e] <= _PHI_POSITIVE_TOL and port.received_tag[head]:
                        blocked[e] = True
            apply_gamma_at_node(
                self.phi[j],
                port.traffic,
                port.out_edges,
                delta,
                blocked,
                self.eta,
                self.traffic_tol,
            )
            if instrumentation is not None and instrumentation.enabled:
                instrumentation.count("gamma_applies")

    # -- phase C: forecast wave --------------------------------------------------------
    def begin_forecast_phase(self, engine: EventEngine) -> None:
        for port in self.ports.values():
            port.reset_forecast_phase()
        for j, port in self.ports.items():
            phi_row = self.phi[j]
            for e, head in zip(port.out_edges, port.out_heads):
                engine.send(
                    head,
                    RoutingSignalMessage(
                        sender=self.node,
                        commodity=j,
                        active=bool(phi_row[e] > _PHI_POSITIVE_TOL),
                    ),
                )
        for port in self.ports.values():
            self._maybe_finish_forecast(port, engine)

    def _maybe_finish_forecast(self, port: CommodityPort, engine: EventEngine) -> None:
        if port.forecast_done:
            return
        if port.signals_received < len(port.in_tails):
            return
        if port.forecasts_received < port.active_upstreams:
            return
        port.forecast_done = True
        port.traffic = port.max_rate + port.inflow  # eq. (3), r_i + inflow
        if not port.is_sink:
            j = port.commodity
            phi_row = self.phi[j]
            for e, head in zip(port.out_edges, port.out_heads):
                frac = phi_row[e]
                if frac > _PHI_POSITIVE_TOL:
                    engine.send(
                        head,
                        ForecastMessage(
                            sender=self.node,
                            commodity=j,
                            flow=port.traffic * frac * float(self.ext.gain[j, e]),
                        ),
                    )
        self._refresh_usage()

    def _refresh_usage(self) -> None:
        """Eqs. (4)-(5): allocate local resource to the forecast flows."""
        usage = 0.0
        for j, port in self.ports.items():
            if port.is_sink or not port.forecast_done:
                continue
            phi_row = self.phi[j]
            for e in port.out_edges:
                usage += port.traffic * phi_row[e] * float(self.ext.cost[j, e])
        self.usage = usage

    # -- message dispatch ---------------------------------------------------------------
    def on_message(self, message: Message, engine: EventEngine) -> None:
        port = self.ports.get(message.commodity)
        if port is None:
            raise ProtocolError(
                f"node {self.node} got a message for commodity "
                f"{message.commodity} it does not carry"
            )
        if isinstance(message, MarginalCostMessage):
            if message.sender not in port.out_heads:
                raise ProtocolError(
                    f"marginal cost from non-neighbour {message.sender} "
                    f"at node {self.node}"
                )
            port.received_dadr[message.sender] = message.value
            port.received_tag[message.sender] = message.tagged
            self._maybe_finish_marginal(port, engine)
        elif isinstance(message, RoutingSignalMessage):
            if message.sender not in port.in_tails:
                raise ProtocolError(
                    f"routing signal from non-upstream {message.sender} "
                    f"at node {self.node}"
                )
            port.signals_received += 1
            if message.active:
                port.active_upstreams += 1
            self._maybe_finish_forecast(port, engine)
        elif isinstance(message, ForecastMessage):
            port.forecasts_received += 1
            port.inflow += message.flow
            self._maybe_finish_forecast(port, engine)
        else:
            raise ProtocolError(f"unknown message type {type(message).__name__}")
