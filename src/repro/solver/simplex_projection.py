"""Euclidean projection onto the probability simplex.

Used by the projected-gradient solver to keep per-node routing fraction
vectors ``phi_i.(j)`` on the simplex ``{x >= 0, sum x = 1}``.  Implements the
classic O(n log n) algorithm (Held, Wolfe & Crowder 1974; popularised by
Duchi et al. 2008): sort, find the threshold index, shift and clip.
"""

from __future__ import annotations

import numpy as np

__all__ = ["project_to_simplex", "project_rows_to_simplex"]


def project_to_simplex(v: np.ndarray, radius: float = 1.0) -> np.ndarray:
    """Return the Euclidean projection of ``v`` onto the simplex of the given radius.

    ``argmin_x ||x - v||_2  s.t.  x >= 0, sum(x) = radius``.

    Parameters
    ----------
    v:
        1-D input vector.
    radius:
        Simplex scale (must be > 0); 1 for probability vectors.
    """
    v = np.asarray(v, dtype=float)
    if v.ndim != 1:
        raise ValueError(f"expected 1-D input, got shape {v.shape}")
    if not radius > 0:
        raise ValueError(f"radius must be > 0, got {radius}")
    n = v.size
    if n == 0:
        raise ValueError("cannot project an empty vector")
    if n == 1:
        return np.array([radius])

    u = np.sort(v)[::-1]
    cumulative = np.cumsum(u) - radius
    indices = np.arange(1, n + 1)
    mask = u - cumulative / indices > 0
    rho = int(indices[mask][-1])
    theta = cumulative[rho - 1] / rho
    return np.maximum(v - theta, 0.0)


def project_rows_to_simplex(matrix: np.ndarray, radius: float = 1.0) -> np.ndarray:
    """Project every row of a 2-D array onto the simplex (vectorised).

    Equivalent to calling :func:`project_to_simplex` per row, but sorts all
    rows at once.
    """
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2:
        raise ValueError(f"expected 2-D input, got shape {matrix.shape}")
    rows, n = matrix.shape
    if n == 0:
        raise ValueError("cannot project rows of width 0")
    u = np.sort(matrix, axis=1)[:, ::-1]
    cumulative = np.cumsum(u, axis=1) - radius
    indices = np.arange(1, n + 1)
    mask = u - cumulative / indices > 0
    rho = n - np.argmax(mask[:, ::-1], axis=1)  # last True index + 1
    theta = cumulative[np.arange(rows), rho - 1] / rho
    return np.maximum(matrix - theta[:, None], 0.0)
