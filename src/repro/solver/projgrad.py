"""Projected-gradient solver over products of simplices.

An independent in-house optimiser used to cross-check the paper's algorithm:
it optimises the *same* routing-fraction parameterisation ``phi`` (rows of
per-node out-fraction simplices) by plain projected gradient on the penalised
objective ``A(phi)``, using :mod:`repro.solver.simplex_projection` for the
projection and Armijo backtracking for the step.  It knows nothing about
marginal-cost waves or blocking, so agreement between its fixed points and
the distributed algorithm's is strong evidence both are correct.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

import numpy as np

from repro.solver.simplex_projection import project_to_simplex

__all__ = ["BlockSimplexProblem", "ProjectedGradientResult", "projected_gradient"]


@dataclass
class BlockSimplexProblem:
    """Minimise ``objective(x)`` where ``x`` is partitioned into simplex blocks.

    ``blocks`` lists index arrays; the variables of each block must stay on
    the probability simplex.  Indices not covered by any block are fixed.
    """

    objective: Callable[[np.ndarray], float]
    gradient: Callable[[np.ndarray], np.ndarray]
    blocks: Sequence[np.ndarray]
    num_vars: int

    def project(self, x: np.ndarray) -> np.ndarray:
        out = x.copy()
        for block in self.blocks:
            out[block] = project_to_simplex(out[block])
        return out


@dataclass
class ProjectedGradientResult:
    x: np.ndarray
    value: float
    iterations: int
    converged: bool
    value_history: List[float]


def projected_gradient(
    problem: BlockSimplexProblem,
    x0: np.ndarray,
    max_iterations: int = 2000,
    initial_step: float = 1.0,
    shrink: float = 0.5,
    tolerance: float = 1e-10,
    patience: int = 10,
) -> ProjectedGradientResult:
    """Projected gradient descent with per-iteration Armijo backtracking.

    Minimises ``problem.objective``.  The step is accepted when it decreases
    the objective; the step size carries over between iterations (doubling on
    immediate success) so the method adapts to local curvature.
    """
    x = problem.project(np.asarray(x0, dtype=float))
    value = problem.objective(x)
    history = [value]
    step = initial_step
    quiet = 0
    converged = False
    iterations = 0

    for iteration in range(1, max_iterations + 1):
        iterations = iteration
        grad = problem.gradient(x)
        improved = False
        trial_step = step
        for _ in range(60):
            candidate = problem.project(x - trial_step * grad)
            cand_value = problem.objective(candidate)
            if np.isfinite(cand_value) and cand_value < value:
                improved = True
                break
            trial_step *= shrink
        if not improved:
            converged = True
            break

        # adapt the carried step: grow on first-try success, else remember
        step = trial_step * (2.0 if trial_step == step else 1.0)
        progress = value - cand_value
        x, value = candidate, cand_value
        history.append(value)

        if progress <= tolerance * max(1.0, abs(value)):
            quiet += 1
            if quiet >= patience:
                converged = True
                break
        else:
            quiet = 0

    return ProjectedGradientResult(
        x=x,
        value=value,
        iterations=iterations,
        converged=converged,
        value_history=history,
    )
