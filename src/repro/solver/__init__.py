"""In-house convex-optimisation substrate (no external solver dependencies
beyond scipy's LP): simplex projection, projected gradient, Frank-Wolfe."""

from repro.solver.frankwolfe import (
    FrankWolfeResult,
    Polytope,
    feasible_point,
    frank_wolfe,
)
from repro.solver.linesearch import armijo_step
from repro.solver.projgrad import (
    BlockSimplexProblem,
    ProjectedGradientResult,
    projected_gradient,
)
from repro.solver.simplex_projection import (
    project_rows_to_simplex,
    project_to_simplex,
)

__all__ = [
    "FrankWolfeResult",
    "Polytope",
    "feasible_point",
    "frank_wolfe",
    "armijo_step",
    "BlockSimplexProblem",
    "ProjectedGradientResult",
    "projected_gradient",
    "project_rows_to_simplex",
    "project_to_simplex",
]
