"""Backtracking (Armijo) line search for ascent/descent steps."""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["armijo_step"]


def armijo_step(
    objective: Callable[[np.ndarray], float],
    point: np.ndarray,
    direction: np.ndarray,
    directional_derivative: float,
    initial_step: float = 1.0,
    shrink: float = 0.5,
    slope_fraction: float = 1e-4,
    max_backtracks: int = 50,
) -> float:
    """Return a step size satisfying the Armijo sufficient-increase condition.

    For *maximisation*: find ``s`` with
    ``objective(point + s * direction) >= objective(point) +
    slope_fraction * s * directional_derivative``.

    ``directional_derivative`` must be the (positive) inner product of the
    gradient with ``direction``; if it is not positive the direction is not
    an ascent direction and 0.0 is returned.
    """
    if directional_derivative <= 0.0:
        return 0.0
    base = objective(point)
    step = initial_step
    for _ in range(max_backtracks):
        candidate = objective(point + step * direction)
        if np.isfinite(candidate) and candidate >= base + (
            slope_fraction * step * directional_derivative
        ):
            return step
        step *= shrink
    return 0.0
