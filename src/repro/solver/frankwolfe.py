"""Frank-Wolfe (conditional gradient) solver for concave maximisation over a polytope.

Used as the in-house centralized solver for the paper's utility optimisation
with general concave utilities: the feasible region (arc flows with gain-aware
conservation and node capacities) is a polytope, so each Frank-Wolfe iteration
reduces to one LP solved with ``scipy.optimize.linprog`` (HiGHS), followed by
a line search on the connecting segment.  The Frank-Wolfe duality gap
``grad(x)^T (s - x)`` upper-bounds the suboptimality of ``x`` for concave
objectives, giving a certified stopping criterion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np
from scipy.optimize import linprog

from repro.exceptions import SolverError

__all__ = ["Polytope", "FrankWolfeResult", "feasible_point", "frank_wolfe"]


@dataclass
class Polytope:
    """``{x : A_eq x = b_eq, A_ub x <= b_ub, x >= 0}`` (either block optional)."""

    a_eq: Optional[np.ndarray] = None
    b_eq: Optional[np.ndarray] = None
    a_ub: Optional[np.ndarray] = None
    b_ub: Optional[np.ndarray] = None
    num_vars: int = 0

    def __post_init__(self) -> None:
        if self.num_vars <= 0:
            for mat in (self.a_eq, self.a_ub):
                if mat is not None:
                    self.num_vars = mat.shape[1]
                    break
        if self.num_vars <= 0:
            raise SolverError("polytope needs at least one constraint matrix")

    def linear_maximizer(self, objective: np.ndarray) -> np.ndarray:
        """Solve ``max objective^T x`` over the polytope via HiGHS."""
        result = linprog(
            c=-np.asarray(objective, dtype=float),
            A_eq=self.a_eq,
            b_eq=self.b_eq,
            A_ub=self.a_ub,
            b_ub=self.b_ub,
            bounds=(0, None),
            method="highs",
        )
        if not result.success:
            raise SolverError(f"LP oracle failed: {result.message}")
        return np.asarray(result.x, dtype=float)

    def contains(self, x: np.ndarray, atol: float = 1e-6) -> bool:
        x = np.asarray(x, dtype=float)
        if np.any(x < -atol):
            return False
        if self.a_eq is not None and np.any(
            np.abs(self.a_eq @ x - self.b_eq) > atol * (1 + np.abs(self.b_eq))
        ):
            return False
        if self.a_ub is not None and np.any(
            self.a_ub @ x - self.b_ub > atol * (1 + np.abs(self.b_ub))
        ):
            return False
        return True


@dataclass
class FrankWolfeResult:
    x: np.ndarray
    value: float
    iterations: int
    converged: bool
    gap_history: List[float] = field(default_factory=list)


def feasible_point(polytope: Polytope) -> np.ndarray:
    """Return any feasible point (zero-objective LP)."""
    return polytope.linear_maximizer(np.zeros(polytope.num_vars))


def _segment_maximize(
    value: Callable[[np.ndarray], float],
    x: np.ndarray,
    direction: np.ndarray,
    step_max: float,
    grid_points: int,
) -> float:
    """Maximise the concave 1-D restriction ``s -> value(x + s*direction)``
    on ``[0, step_max]`` by a coarse grid plus ternary refinement."""
    grid = np.linspace(0.0, step_max, grid_points)
    values = [value(x + s * direction) for s in grid]
    best = int(np.argmax(values))
    lo = grid[max(best - 1, 0)]
    hi = grid[min(best + 1, grid_points - 1)]
    for _ in range(40):
        m1 = lo + (hi - lo) / 3.0
        m2 = hi - (hi - lo) / 3.0
        if value(x + m1 * direction) < value(x + m2 * direction):
            lo = m1
        else:
            hi = m2
    return 0.5 * (lo + hi)


def frank_wolfe(
    value: Callable[[np.ndarray], float],
    gradient: Callable[[np.ndarray], np.ndarray],
    polytope: Polytope,
    x0: Optional[np.ndarray] = None,
    max_iterations: int = 500,
    gap_tolerance: float = 1e-6,
    line_search_points: int = 32,
) -> FrankWolfeResult:
    """Maximise the concave ``value`` over ``polytope`` by *away-step*
    conditional gradient.

    Plain Frank-Wolfe zig-zags (sublinearly) when the optimum sits on a face
    of the polytope; the away-step variant (Guelat & Marcotte 1986) keeps the
    current iterate as an explicit convex combination of LP-oracle vertices
    and, on each round, either moves *toward* the best vertex or *away* from
    the worst active vertex -- whichever direction has the larger gradient
    inner product.  Away steps can drop vertices from the active set, which
    is exactly what kills the zig-zag.

    Parameters
    ----------
    value, gradient:
        The concave objective and its gradient.
    x0:
        Feasible start; computed via :func:`feasible_point` if omitted.
        (An ``x0`` is treated as a vertex of the active-set decomposition.)
    gap_tolerance:
        Stop when the Frank-Wolfe duality gap drops below
        ``gap_tolerance * max(1, |value(x)|)``.
    line_search_points:
        Grid resolution of the exact-ish segment line search (the objective
        is concave on the segment, so grid + ternary refinement is robust).
    """
    x = feasible_point(polytope) if x0 is None else np.asarray(x0, dtype=float)
    if not polytope.contains(x, atol=1e-5):
        raise SolverError("Frank-Wolfe start point is infeasible")

    # active set: vertex tuple -> convex weight
    active: dict = {tuple(np.round(x, 12)): 1.0}
    vertices = {tuple(np.round(x, 12)): x.copy()}

    gaps: List[float] = []
    converged = False
    iterations = 0
    for k in range(1, max_iterations + 1):
        iterations = k
        grad = np.asarray(gradient(x), dtype=float)
        toward_vertex = polytope.linear_maximizer(grad)
        fw_direction = toward_vertex - x
        gap = float(grad @ fw_direction)
        gaps.append(gap)
        if gap <= gap_tolerance * max(1.0, abs(value(x))):
            converged = True
            break

        # worst active vertex (smallest gradient inner product)
        away_key = min(active, key=lambda key: float(grad @ vertices[key]))
        away_vertex = vertices[away_key]
        away_direction = x - away_vertex
        away_score = float(grad @ away_direction)

        if gap >= away_score or len(active) == 1:
            direction = fw_direction
            step_max = 1.0
            move = "toward"
        else:
            direction = away_direction
            weight = active[away_key]
            step_max = weight / (1.0 - weight) if weight < 1.0 else 1.0
            move = "away"

        step = _segment_maximize(value, x, direction, step_max, line_search_points)
        if step <= 0.0 and move == "toward":
            step = min(1.0, 2.0 / (k + 2.0))  # classic fallback schedule
        if step <= 0.0:
            continue  # away direction brings no gain; try again with FW step

        x = x + step * direction

        # maintain the convex decomposition
        if move == "toward":
            key = tuple(np.round(toward_vertex, 12))
            vertices.setdefault(key, toward_vertex.copy())
            for other in list(active):
                active[other] *= 1.0 - step
            active[key] = active.get(key, 0.0) + step
        else:
            scale = 1.0 + step
            for other in list(active):
                active[other] *= scale
            active[away_key] -= step
        # drop numerically dead vertices
        for key in [key for key, w in active.items() if w <= 1e-12]:
            del active[key]
            del vertices[key]

    return FrankWolfeResult(
        x=x,
        value=float(value(x)),
        iterations=iterations,
        converged=converged,
        gap_history=gaps,
    )
